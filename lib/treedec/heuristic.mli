(** Centralized tree-decomposition heuristics.

    Used as (i) a baseline against the distributed algorithm of Theorem 1
    and (ii) local computation inside CONGEST nodes once a subgraph has
    been gathered. Min-fill is the standard strong heuristic; degeneracy
    gives a treewidth lower bound, so experiments can bracket the true
    treewidth of generated instances. *)

(** [min_fill_order g] is an elimination order chosen by smallest
    fill-in (ties by degree). *)
val min_fill_order : Repro_graph.Digraph.t -> int array

(** [min_degree_order g] is an elimination order by smallest degree. *)
val min_degree_order : Repro_graph.Digraph.t -> int array

(** [of_order g order] is the tree decomposition induced by an
    elimination order (bags are the elimination cliques). Always valid;
    width depends on the order quality. *)
val of_order : Repro_graph.Digraph.t -> int array -> Decomposition.t

(** [min_fill g] is [of_order g (min_fill_order g)]. *)
val min_fill : Repro_graph.Digraph.t -> Decomposition.t

(** [degeneracy g] is the graph degeneracy — a lower bound on treewidth. *)
val degeneracy : Repro_graph.Digraph.t -> int

(** [treewidth_upper g] is the smaller of the min-fill and min-degree
    decomposition widths. *)
val treewidth_upper : Repro_graph.Digraph.t -> int
