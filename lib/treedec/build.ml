module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Metrics = Repro_congest.Metrics
module Primitives = Repro_shortcut.Primitives

type report = { decomposition : Decomposition.t; max_t : int; levels : int }

type node = {
  key : Decomposition.key;
  mask : bool array;  (* V(G_x) *)
  inherited : int list;  (* B_p(x) cap V(G_x) *)
}

let mask_size = Repro_graph.Mask.size
let masked = Repro_graph.Mask.vertices

let decompose ?(profile = Separator.practical_profile) ?(seed = 0) g ~metrics =
  let skeleton = if Digraph.directed g then Digraph.skeleton g else g in
  let n = Digraph.n skeleton in
  if n = 0 then invalid_arg "Build.decompose: empty graph";
  if not (Traversal.is_connected skeleton) then
    invalid_arg "Build.decompose: graph must be connected";
  let bags = ref [] in
  let max_t = ref 0 in
  let levels = ref 0 in
  let level =
    ref [ { key = []; mask = Array.make n true; inherited = [] } ]
  in
  while !level <> [] do
    incr levels;
    let next = ref [] in
    let level_costs = ref [] in
    List.iter
      (fun node ->
        let size = mask_size node.mask in
        (* G'_x = G_x minus the inherited bag *)
        let gprime = Array.copy node.mask in
        List.iter (fun v -> gprime.(v) <- false) node.inherited;
        let sep =
          if mask_size gprime = 0 then []
          else begin
            let cost = Primitives.cost_zero () in
            let s, t_used =
              Separator.find_separator ~profile
                ~seed:(seed + (17 * List.length node.key) + List.fold_left ( + ) 0 node.key)
                skeleton ~mask:gprime ~x_mask:gprime ~cost
            in
            level_costs := cost :: !level_costs;
            if t_used > !max_t then max_t := t_used;
            s
          end
        in
        let bag = List.sort_uniq compare (sep @ node.inherited) in
        if size <= max 4 (2 * List.length bag) then
          (* leaf: the bag is the whole subgraph *)
          bags := (node.key, Array.of_list (masked (node.mask))) :: !bags
        else begin
          bags := (node.key, Array.of_list bag) :: !bags;
          (* children: components of G_x - B_x, each with adjacent bag
             vertices added back *)
          let residual = Array.copy node.mask in
          List.iter (fun v -> residual.(v) <- false) bag;
          let labels, count = Traversal.components_mask skeleton residual in
          let comp_masks = Array.init count (fun _ -> Array.make n false) in
          Array.iteri (fun v l -> if l >= 0 then comp_masks.(l).(v) <- true) labels;
          let in_bag = Array.make n false in
          List.iter (fun v -> in_bag.(v) <- true) bag;
          let idx = ref 0 in
          Array.iter
            (fun comp ->
              (* bag vertices adjacent to the component, within G_x *)
              let child_mask = Array.copy comp in
              let inherited = ref [] in
              Array.iter
                (fun e ->
                  let u = e.Digraph.src and v = e.Digraph.dst in
                  let touch b c =
                    if in_bag.(b) && node.mask.(b) && comp.(c) && not child_mask.(b)
                    then begin
                      child_mask.(b) <- true;
                      inherited := b :: !inherited
                    end
                  in
                  touch u v;
                  touch v u)
                (Digraph.edges skeleton);
              let child_size = mask_size child_mask in
              if child_size >= size then
                (* no shrink: close off as a leaf to guarantee termination *)
                bags := (node.key @ [ !idx ], Array.of_list (masked child_mask)) :: !bags
              else
                next :=
                  { key = node.key @ [ !idx ]; mask = child_mask;
                    inherited = List.sort_uniq compare !inherited }
                  :: !next;
              incr idx)
            comp_masks;
          let ccd_parts = Repro_shortcut.Part.of_labels skeleton labels in
          if count > 0 then begin
            let b = Primitives.basis ccd_parts ~metrics:(Metrics.create ()) in
            Metrics.add metrics ~label:"treedec/ccd" (Primitives.lemma8_rounds b)
          end
        end)
      !level;
    if !level_costs <> [] then
      Metrics.add metrics ~label:"treedec/level" (Primitives.schedule_disjoint !level_costs);
    level := !next
  done;
  let decomposition = Decomposition.create g !bags in
  { decomposition; max_t = !max_t; levels = !levels }

