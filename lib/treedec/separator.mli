(** The SEP balanced-separator algorithm of Section 3.3 / Lemma 1.

    Given a connected masked subgraph G' of the communication graph and a
    target set X, SEP with parameter [t] either outputs an
    (X, alpha)-balanced separator of size O(t^2) or fails; the driver
    doubles [t] until success ({!find_separator}). Communication is
    priced through {!Repro_shortcut.Primitives.cost} so that parallel
    instances can be combined with Theorem 6.

    Two constant profiles are provided: {!paper_profile} uses the paper's
    exact constants (balance 14399/14400, 95 sampled pairs, threshold
    200 t^2 — meaningful only asymptotically), while {!practical_profile}
    scales them down so that the algorithm exercises its full logic on
    laptop-size instances (DESIGN.md E6 ablates the difference). *)

type profile = {
  name : string;
  threshold_factor : int;  (** step 1 fires when mu(G) <= factor * t^2 *)
  iter_num : int;
  iter_den : int;  (** iterations = ceil(iter_num * t / iter_den) *)
  pairs : int;  (** sampled tree pairs per iteration (step 4) *)
  balance_num : int;
  balance_den : int;  (** separator balance alpha = num/den *)
  split_lo_den : int;  (** split tree min weight = mu(G) / (lo_den * t) *)
  split_hi_den : int;  (** split tree max weight = mu(G) / (hi_den * t) *)
  trials : int;  (** step 4 retries before concluding t is too small *)
  centralized_base : bool;
      (** when the step-1 threshold fires (the subgraph is small enough to
          gather centrally), return a min-fill-derived balanced bag
          instead of all of X. The paper outputs X (asymptotically
          irrelevant); the practical profile enables the centralized base
          for far better widths at laptop sizes. *)
}

val paper_profile : profile
val practical_profile : profile

(** [is_balanced g ~mask ~x_mask ~profile sep] checks that removing [sep]
    from the masked subgraph leaves components of X-weight at most
    [alpha * mu_X(mask)]. *)
val is_balanced :
  Repro_graph.Digraph.t ->
  mask:bool array ->
  x_mask:bool array ->
  profile:profile ->
  int list ->
  bool

(** [sep ?profile ~rng g ~mask ~x_mask ~t ~cost] runs one SEP attempt
    with parameter [t]; [None] means "conclude tau + 1 > t". The masked
    subgraph must be connected and nonempty. *)
val sep :
  ?profile:profile ->
  rng:Random.State.t ->
  Repro_graph.Digraph.t ->
  mask:bool array ->
  x_mask:bool array ->
  t:int ->
  cost:Repro_shortcut.Primitives.cost ->
  int list option

(** [find_separator ?profile ?seed g ~mask ~x_mask ~cost] doubles [t]
    starting from 2 until SEP succeeds (always terminates: step 1 fires
    once [t^2] exceeds the subgraph weight). Returns the separator and
    the final [t]. *)
val find_separator :
  ?profile:profile ->
  ?seed:int ->
  Repro_graph.Digraph.t ->
  mask:bool array ->
  x_mask:bool array ->
  cost:Repro_shortcut.Primitives.cost ->
  int list * int
