module Digraph = Repro_graph.Digraph

type node = Leaf | Introduce of int * t | Forget of int * t | Join of t * t
and t = { bag : int array; node : node }

let sorted_bag b = Array.of_list (List.sort_uniq compare (Array.to_list b))

(* chain of Introduce nodes building [bag] from the empty bag *)
let introduce_chain bag =
  Array.fold_left
    (fun acc v ->
      {
        bag = sorted_bag (Array.append acc.bag [| v |]);
        node = Introduce (v, acc);
      })
    { bag = [||]; node = Leaf }
    bag

(* lift [sub] (top bag = from) to top bag [target]: forget the extras,
   then introduce the missing vertices *)
let lift sub target =
  let target_list = Array.to_list target in
  let sub_list = Array.to_list sub.bag in
  let extras = List.filter (fun v -> not (List.mem v target_list)) sub_list in
  let missing = List.filter (fun v -> not (List.mem v sub_list)) target_list in
  let after_forgets =
    List.fold_left
      (fun acc v ->
        {
          bag = Array.of_list (List.filter (fun u -> u <> v) (Array.to_list acc.bag));
          node = Forget (v, acc);
        })
      sub extras
  in
  List.fold_left
    (fun acc v ->
      { bag = sorted_bag (Array.append acc.bag [| v |]); node = Introduce (v, acc) })
    after_forgets missing

let rec balanced_join bag = function
  | [] -> introduce_chain bag
  | [ t ] -> t
  | ts ->
      let rec pair = function
        | a :: b :: rest -> { bag; node = Join (a, b) } :: pair rest
        | rest -> rest
      in
      balanced_join bag (pair ts)

let of_decomposition dec =
  (match Decomposition.validate dec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Nice.of_decomposition: " ^ e));
  let rec convert key =
    let bag = sorted_bag (Decomposition.bag dec key) in
    match Decomposition.children dec key with
    | [] -> introduce_chain bag
    | children ->
        let lifted =
          List.map (fun i -> lift (convert (key @ [ i ])) bag) children
        in
        balanced_join bag lifted
  in
  let top = convert [] in
  (* canonical form: forget everything so the root bag is empty *)
  lift top [||]

let width t =
  let rec go acc = function
    | [] -> acc
    | t :: rest ->
        let acc = max acc (Array.length t.bag - 1) in
        let rest =
          match t.node with
          | Leaf -> rest
          | Introduce (_, c) | Forget (_, c) -> c :: rest
          | Join (a, b) -> a :: b :: rest
        in
        go acc rest
  in
  go 0 [ t ]

let size t =
  let rec go acc = function
    | [] -> acc
    | t :: rest ->
        let rest =
          match t.node with
          | Leaf -> rest
          | Introduce (_, c) | Forget (_, c) -> c :: rest
          | Join (a, b) -> a :: b :: rest
        in
        go (acc + 1) rest
  in
  go 0 [ t ]

let validate g t =
  let ( let* ) r f = Result.bind r f in
  let mem v bag = Array.exists (fun u -> u = v) bag in
  let equal_bags a b = sorted_bag a = sorted_bag b in
  (* structural invariants *)
  let rec structure t =
    match t.node with
    | Leaf ->
        if Array.length t.bag = 0 then Ok () else Error "leaf bag must be empty"
    | Introduce (v, c) ->
        if not (mem v t.bag) then Error "introduced vertex not in bag"
        else if mem v c.bag then Error "introduced vertex already in child bag"
        else if
          not (equal_bags c.bag (Array.of_list (List.filter (fun u -> u <> v) (Array.to_list t.bag))))
        then Error "introduce: bags differ by more than the vertex"
        else structure c
    | Forget (v, c) ->
        if mem v t.bag then Error "forgotten vertex still in bag"
        else if not (mem v c.bag) then Error "forgotten vertex not in child bag"
        else if
          not (equal_bags t.bag (Array.of_list (List.filter (fun u -> u <> v) (Array.to_list c.bag))))
        then Error "forget: bags differ by more than the vertex"
        else
          let* () = structure c in
          Ok ()
    | Join (a, b) ->
        if not (equal_bags t.bag a.bag && equal_bags t.bag b.bag) then
          Error "join children bags differ"
        else
          let* () = structure a in
          structure b
  in
  let* () = structure t in
  (* ordinary tree-decomposition conditions, via the generic checker *)
  let assoc = ref [] in
  let rec collect key t =
    assoc := (key, t.bag) :: !assoc;
    match t.node with
    | Leaf -> ()
    | Introduce (_, c) | Forget (_, c) -> collect (key @ [ 0 ]) c
    | Join (a, b) ->
        collect (key @ [ 0 ]) a;
        collect (key @ [ 1 ]) b
  in
  collect [] t;
  Decomposition.validate (Decomposition.create g !assoc)
