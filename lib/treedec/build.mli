(** Distributed tree-decomposition construction (Section 3.4, Theorem 1).

    Recursively: at tree node [x] with subgraph G_x and inherited bag
    B_p(x), compute a balanced separator S'_x of G'_x = G_x - B_p(x)
    (all the G'_x of one level are vertex-disjoint, so their SEP
    instances run in parallel and are priced with Theorem 6), set
    B_x = (B_p(x) cap V(G_x)) cup S'_x, and recurse on the connected
    components of G_x - B_x, each extended with its adjacent B_x
    vertices. Recursion bottoms out when the subgraph is at most twice
    the bag size (the bag then becomes the whole subgraph). *)

type report = {
  decomposition : Decomposition.t;
  max_t : int;  (** largest SEP parameter used by any separator call *)
  levels : int;  (** recursion depth *)
}

(** [decompose ?profile ?seed g ~metrics] builds a tree decomposition of
    the connected graph [g] (its skeleton when directed). Rounds are
    charged per recursion level under ["treedec/level"] (separators) and
    ["treedec/ccd"] (component detection). *)
val decompose :
  ?profile:Separator.profile ->
  ?seed:int ->
  Repro_graph.Digraph.t ->
  metrics:Repro_congest.Metrics.t ->
  report
