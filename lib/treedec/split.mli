(** The SPLIT procedure of Section 3.3 (step 2): decompose a spanning
    tree into split subtrees of weight in [lo, hi], pairwise
    vertex-disjoint except possibly at their roots.

    The weight of a subtree is the sum of [mu v] over its vertices
    ([mu_X] in the paper: 1 if the vertex is in the target set X).
    Repeatedly: find the weighted center, detach heavy child subtrees,
    regroup the light remainder around the center (Fig. 1 of the paper);
    recurse on pieces still heavier than [hi]. *)

type subtree = { root : int; vertices : int list }

(** [run ~tree_adj ~root ~mu ~lo ~hi] splits the tree given by adjacency
    lists [tree_adj] (tree edges only; non-tree vertices have empty
    lists). Requires [1 <= lo] and [3 * lo <= hi]. Every returned subtree
    has weight at most [hi]; subtrees of weight below [lo] can only arise
    when the whole input tree is that light. The union of the returned
    vertex sets covers the input tree. *)
val run :
  tree_adj:int list array ->
  root:int ->
  mu:(int -> int) ->
  lo:int ->
  hi:int ->
  subtree list
