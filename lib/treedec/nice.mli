(** Nice tree decompositions.

    A nice decomposition has four node kinds — leaf (empty bag),
    introduce (adds one vertex), forget (removes one vertex), join (two
    children with equal bags) — the normal form dynamic programming over
    tree decompositions is usually written against [CFK+15, Chapter 7].
    Converting an arbitrary decomposition preserves the width and grows
    the tree by a factor O(width · n).

    This powers the tree-decomposition {e applications} the paper cites
    from [Li18]: once a decomposition is distributed, optimal solutions
    of NP-hard problems follow by a bottom-up DP whose communication is
    one aggregation per decomposition level (see {!Repro_core.Dp}). *)

type node =
  | Leaf
  | Introduce of int * t  (** vertex added w.r.t. the child *)
  | Forget of int * t  (** vertex removed w.r.t. the child *)
  | Join of t * t  (** both children have the same bag *)

and t = { bag : int array;  (** sorted *) node : node }

(** [of_decomposition dec] converts; the result covers the same graph.
    @raise Invalid_argument if [dec] is invalid. *)
val of_decomposition : Decomposition.t -> t

(** [width t] is max bag size - 1 (at least 0 for nonempty graphs). *)
val width : t -> int

(** [size t] is the number of nice nodes. *)
val size : t -> int

(** [validate g t] checks the nice-decomposition invariants plus the
    ordinary tree-decomposition conditions w.r.t. [g]. *)
val validate : Repro_graph.Digraph.t -> t -> (unit, string) result
