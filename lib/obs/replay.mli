(** Deterministic record/replay schedules.

    Within one [Engine.run] the triple (send_round, src, dst)
    uniquely keys each adversary consultation (the engine forbids two
    same-direction messages per link per round), so a trace captures
    the complete delivery schedule. [of_events] rebuilds it: per
    faulty run, each recorded [Send] opens a fate; each [Deliver] or
    receiver-down [Drop] adds one surviving copy's extra delay; an
    empty fate is a link drop. Feeding {!plan} (plus {!crashes}) to a
    scripted [Fault] adversary reproduces the recorded run exactly. *)

exception Divergence of string
(** Raised when the replayed execution consults the adversary about a
    send the trace never recorded (the code under replay diverged from
    the recorded code), or when it starts more faulty runs than the
    trace contains. *)

type crash_window = {
  node : int;
  from_round : int;
  until_round : int option;
  amnesia : bool;
}

type t

val of_events : Event.t list -> t

val runs : t -> int
(** Number of faulty run sections in the trace. *)

val crashes : t -> crash_window list
(** Adversary crash windows, reconstructed from the first faulty run's
    [Crash_window] events (one adversary serves every run of a CLI
    invocation, so the windows repeat identically). *)

val plan : t -> run:int -> round:int -> src:int -> dst:int -> int list
(** The recorded fate of the given send: a (sorted) list of per-copy
    extra delays; [[]] means the copy was dropped on the wire. Raises
    {!Divergence} if the trace has no entry. *)
