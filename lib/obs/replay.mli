(** Deterministic record/replay schedules.

    Within one [Engine.run] the triple (send_round, src, dst)
    uniquely keys each adversary consultation (the engine forbids two
    same-direction messages per link per round), so a trace captures
    the complete delivery schedule. [of_events] rebuilds it: per
    faulty run, each recorded [Send] opens a fate; each [Deliver],
    receiver-down [Drop], straggler-cut [Drop] or garbled [Drop] adds
    one surviving copy's extra delay; [Corrupt] events mark which copies were garbled in
    flight; an empty fate is a link drop. Partition windows are
    deterministic and re-applied by the engine itself, so severed
    sends have no recorded fate — {!partitions} reconstructs the
    windows from the static [Partition_window] events instead.
    Feeding {!plan} (plus {!crashes} and {!partitions}) to a scripted
    [Fault] adversary reproduces the recorded run exactly. *)

exception Divergence of string
(** Raised when the replayed execution consults the adversary about a
    send the trace never recorded (the code under replay diverged from
    the recorded code), when it starts more faulty runs than the trace
    contains, or when the trace's [Corrupt] events do not match its
    deliveries. *)

type crash_window = {
  node : int;
  from_round : int;
  until_round : int option;
  amnesia : bool;
}

type partition_window = {
  links : (int * int) list;
  nodes : int list;
  p_from_round : int;
  heal_round : int option;
}

type straggle_window = {
  s_node : int;
  s_from_round : int;
  s_until_round : int option;
  s_factor : int;
}

(** Continuous timing dimensions plus the seed their pure-hash draws
    key on — one [Timing] event replays the whole virtual-time
    schedule. *)
type timing = { link_latency : int; skew : int; timing_seed : int }

type t

val of_events : Event.t list -> t

val runs : t -> int
(** Number of faulty run sections in the trace. *)

val crashes : t -> crash_window list
(** Adversary crash windows, reconstructed from the first faulty run's
    [Crash_window] events (one adversary serves every run of a CLI
    invocation, so the windows repeat identically). *)

val partitions : t -> partition_window list
(** Adversary partition windows, reconstructed from the first faulty
    run's [Partition_window] events (same repetition argument). *)

val stragglers : t -> straggle_window list
(** Adversary straggler windows, reconstructed from the first faulty
    run's [Straggle_window] events. *)

val timing : t -> timing option
(** The recorded [Timing] event of the first faulty run, if the
    profile had a timing dimension. *)

val plan : t -> run:int -> round:int -> src:int -> dst:int -> (int * bool) list
(** The recorded fate of the given send: per surviving copy, its extra
    delay and whether it was corrupted in flight, sorted (canonical
    order among indistinguishable duplicates); [[]] means the copy was
    dropped on the wire. Raises {!Divergence} if the trace has no
    entry. *)
