(** In-memory trace recorder: a growable ring buffer of events.

    The buffer doubles until it reaches the hard [capacity]
    (default [2^22] events), after which it wraps and overwrites the
    oldest events — long runs keep the most recent window instead of
    exhausting memory. *)

type t

val create : ?capacity:int -> unit -> t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val record : t -> Event.t -> unit
val length : t -> int

val overwritten : t -> int
(** Number of oldest events lost to ring wrap-around (0 unless the
    run exceeded [capacity] events). *)

val clear : t -> unit

val to_list : t -> Event.t list
(** Events in recording order (oldest first). *)

val iter : (Event.t -> unit) -> t -> unit

val sink : t -> Sink.t
(** An enabled sink that records into this buffer. *)
