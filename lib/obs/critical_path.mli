(** Critical-path analysis over recorded traces.

    Builds the message-dependency DAG of a run (a send from [v]
    depends on every earlier delivery to [v]) and reports the heaviest
    dependency chain, weighted in rounds: a hop costs
    [deliver_round - send_round], so adversary-delayed copies and
    retransmissions that only landed on a later attempt stretch the
    chain by the rounds they actually spent in flight. The chain
    weight lower-bounds the makespan of the recorded execution — the
    measured "dilation" term of the dilation+congestion framework —
    and on a fault-free trace equals the chain length. Also reported:
    per-node slack (distance off the critical path), idle time, the
    most congested directed edges, and — on asynchronous traces
    carrying [Pulse]/[Safe]/[Straggle] events — pulse-duration
    percentiles and the straggler tail. *)

type link = { send_round : int; src : int; dst : int; deliver_round : int }

type report = {
  label : string;
  faulty : bool;
  rounds : int;
  nodes : int;
  sends : int;
  delivered : int;
  dropped : int;
  retransmits : int;
  bound : int;  (** makespan lower bound in rounds (chain weight) *)
  chain : link list;  (** heaviest dependency chain, causal order *)
  slack : (int * int) list;
      (** (node, [bound] minus the heaviest chain ending at the node),
          most critical first — slack 0 is on the critical path *)
  idle : (int * int) list;  (** (node, idle rounds), worst first *)
  congested : (int * int * int * int) list;
      (** (src, dst, total words, sends), heaviest first *)
  pulses : int;  (** async pulses observed; 0 on synchronous traces *)
  pulse_p50 : int;  (** pulse duration percentiles, vt units *)
  pulse_p99 : int;
  pulse_max : int;
  straggle_tail : (int * int * int) list;
      (** (node, straggled pulses, worst pulse duration in vt units),
          worst first: the straggler tail of an asynchronous run *)
}

val chain_length : report -> int

val analyze : ?top:int -> Trace_io.run -> report
(** [top] bounds the slack/idle/congested/straggler lists (default 5). *)

val analyze_all : ?top:int -> Event.t list -> report list
(** One report per [Run_start] section of the trace. *)

val pp_report : Format.formatter -> report -> unit
