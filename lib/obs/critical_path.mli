(** Critical-path analysis over recorded traces.

    Builds the message-dependency DAG of a run (a send from [v]
    depends on every earlier delivery to [v]) and reports the longest
    dependency chain — a lower bound on the makespan of the same
    message pattern under any schedule, i.e. the measured "dilation"
    term of the dilation+congestion framework — plus per-node idle
    time and the most congested directed edges. *)

type link = { send_round : int; src : int; dst : int; deliver_round : int }

type report = {
  label : string;
  faulty : bool;
  rounds : int;
  nodes : int;
  sends : int;
  delivered : int;
  dropped : int;
  retransmits : int;
  chain : link list;  (** longest dependency chain, causal order *)
  idle : (int * int) list;  (** (node, idle rounds), worst first *)
  congested : (int * int * int * int) list;
      (** (src, dst, total words, sends), heaviest first *)
}

val chain_length : report -> int

val analyze : ?top:int -> Trace_io.run -> report
(** [top] bounds the idle/congested lists (default 5). *)

val analyze_all : ?top:int -> Event.t list -> report list
(** One report per [Run_start] section of the trace. *)

val pp_report : Format.formatter -> report -> unit
