(** Trace export/import.

    JSONL is the canonical on-disk format ([--trace] output, read back
    by [--replay] and [trace_cli]); the Chrome trace-event JSON loads
    in Perfetto / chrome://tracing with one track per node and message
    arrows as flow events; the CSV aggregates per-edge congestion. *)

type run = { label : string; faulty : bool; events : Event.t list }
(** One [Engine.run] section of a trace; [events] excludes the leading
    [Run_start]. *)

val split_runs : Event.t list -> run list
(** Partition a trace at its [Run_start] markers (a headerless prefix
    becomes a synthetic non-faulty run). *)

val run_max_round : run -> int
val max_node : run -> int

val write_jsonl : path:string -> Event.t list -> unit

val read_jsonl : path:string -> Event.t list
(** Raises [Event.Parse_error] on malformed lines and [Sys_error] on
    I/O failure. Blank lines are skipped. *)

val write_chrome : path:string -> Event.t list -> unit
val write_congestion_csv : path:string -> Event.t list -> unit
