(** Typed trace-event vocabulary for the CONGEST engine.

    Events are self-contained (plain ints/strings), so traces can be
    serialized, parsed and analyzed without the engine's message
    types. Round conventions match the engine: [Send] carries the
    round whose outbox produced the message; [Deliver]/[Drop] carry
    both that send round and the round at which the copy reached (or
    failed to reach) the destination inbox. *)

type drop_reason =
  | Link  (** the adversary destroyed the copy on the wire *)
  | Receiver_down  (** the copy arrived at a node that was crashed *)
  | Severed  (** the link was cut by an active partition window *)
  | Garbled
      (** the copy was corrupted in flight and the raw engine discarded
          it as undecodable (frame-level CRC semantics; layers with a
          corruption transform receive the garbled copy instead) *)
  | Straggler
      (** the receiver had cut the sender as a chronic straggler
          (deadline-paced asynchronous mode) and discarded its copy *)

type t =
  | Run_start of { label : string; faulty : bool }
      (** emitted once per [Engine.run]; [faulty] records whether an
          adversary was attached, which is what record/replay keys on *)
  | Round_start of { round : int }
  | Round_end of { round : int }
  | Send of { round : int; src : int; dst : int; words : int }
  | Deliver of { send_round : int; round : int; src : int; dst : int; words : int }
  | Drop of {
      send_round : int;
      round : int;
      src : int;
      dst : int;
      words : int;
      reason : drop_reason;
    }
  | Duplicate of { round : int; src : int; dst : int; copies : int }
  | Delay of { round : int; src : int; dst : int; deliver_round : int }
  | Retransmit of { round : int; src : int; dst : int; seq : int }
  | Ack of { round : int; src : int; dst : int; seq : int }
  | Crash of { round : int; node : int }
  | Restart of { round : int; node : int }
  | Crash_window of {
      node : int;
      from_round : int;
      until_round : int option;
      amnesia : bool;
    }
      (** static description of an adversary crash window, emitted at
          [Run_start] time so replay can reconstruct the profile *)
  | Checkpoint of { round : int; node : int; words : int }
  | Recovery_resync of { round : int; node : int }
  | Partition of { round : int; src : int; dst : int }
      (** link [src - dst] went down at [round] (a partition window
          opened over it); emitted once per link per transition *)
  | Heal of { round : int; src : int; dst : int }
      (** link [src - dst] came back up at [round] *)
  | Corrupt of { send_round : int; deliver_round : int; src : int; dst : int }
      (** one copy of the [send_round] message on [src -> dst] was
          garbled in flight, landing (or being discarded) at
          [deliver_round]; replay uses the pair of rounds to reattach
          the corrupt flag to the right copy *)
  | Nack of { round : int; src : int; dst : int; seq : int }
      (** [src] rejected a checksum-failing packet from [dst] and asked
          for an immediate retransmit of seq [seq] *)
  | Link_lost of { round : int; src : int; dst : int; seq : int; retries : int }
      (** [src] abandoned its link to [dst] after [retries]
          retransmissions of seq [seq] (the transport's [max_retries]
          cap) — the typed Link_down verdict *)
  | Suspect of { round : int; node : int; peer : int }
      (** failure detector: [node] started suspecting neighbor [peer] *)
  | Clear of { round : int; node : int; peer : int }
      (** failure detector: [node] heard from [peer] again and cleared
          its suspicion *)
  | Partition_window of {
      links : (int * int) list;
      nodes : int list;
      from_round : int;
      heal_round : int option;
    }
      (** static description of an adversary partition window (one of
          [links]/[nodes] is empty, mirroring [Fault.cut]), emitted at
          [Run_start] time so replay can reconstruct the profile *)
  | Pulse of { round : int; node : int; vt : int }
      (** α-synchronizer: [node] began pulse [round] at virtual time
          [vt] (asynchronous executor only; pulses coincide with the
          engine's logical rounds) *)
  | Safe of { round : int; node : int; vt : int }
      (** α-synchronizer: every copy [node] sent in pulse [round] was
          acknowledged by [vt]; its SAFE notification fans out to all
          live neighbors *)
  | Straggle of { round : int; node : int; factor : int; vt : int }
      (** [node] executed pulse [round] under an active straggler
          window: computation stretched by [factor] ([factor = 0]:
          stalled forever — the pulse never completes) *)
  | Skew of { node : int; offset : int }
      (** [node]'s virtual clock starts [offset] units late (bounded
          clock skew), emitted once per run *)
  | Straggler_cut of { round : int; node : int; peer : int; vt : int }
      (** deadline pacing: [node] stopped waiting for [peer]'s SAFE
          after [peer] blew the pulse deadline [max_strikes] times in a
          row; [peer]'s copies to [node] are dropped from here on *)
  | Straggle_window of {
      node : int;
      from_round : int;
      until_round : int option;
      factor : int;
    }
      (** static description of an adversary straggler window, emitted
          at [Run_start] time so replay can reconstruct the profile *)
  | Timing of { link_latency : int; skew : int; seed : int }
      (** static description of the profile's continuous timing
          dimensions plus the timing seed; timing draws are pure hashes
          of the seed, so this one event replays the entire
          virtual-time schedule *)

exception Parse_error of string

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal. *)

val to_json : t -> string
(** One flat JSON object, no trailing newline. *)

val of_json : string -> t
(** Inverse of {!to_json}; raises {!Parse_error} on malformed input. *)

val pp : Format.formatter -> t -> unit
