(** Typed trace-event vocabulary for the CONGEST engine.

    Events are self-contained (plain ints/strings), so traces can be
    serialized, parsed and analyzed without the engine's message
    types. Round conventions match the engine: [Send] carries the
    round whose outbox produced the message; [Deliver]/[Drop] carry
    both that send round and the round at which the copy reached (or
    failed to reach) the destination inbox. *)

type drop_reason =
  | Link  (** the adversary destroyed the copy on the wire *)
  | Receiver_down  (** the copy arrived at a node that was crashed *)

type t =
  | Run_start of { label : string; faulty : bool }
      (** emitted once per [Engine.run]; [faulty] records whether an
          adversary was attached, which is what record/replay keys on *)
  | Round_start of { round : int }
  | Round_end of { round : int }
  | Send of { round : int; src : int; dst : int; words : int }
  | Deliver of { send_round : int; round : int; src : int; dst : int; words : int }
  | Drop of {
      send_round : int;
      round : int;
      src : int;
      dst : int;
      words : int;
      reason : drop_reason;
    }
  | Duplicate of { round : int; src : int; dst : int; copies : int }
  | Delay of { round : int; src : int; dst : int; deliver_round : int }
  | Retransmit of { round : int; src : int; dst : int; seq : int }
  | Ack of { round : int; src : int; dst : int; seq : int }
  | Crash of { round : int; node : int }
  | Restart of { round : int; node : int }
  | Crash_window of {
      node : int;
      from_round : int;
      until_round : int option;
      amnesia : bool;
    }
      (** static description of an adversary crash window, emitted at
          [Run_start] time so replay can reconstruct the profile *)
  | Checkpoint of { round : int; node : int; words : int }
  | Recovery_resync of { round : int; node : int }

exception Parse_error of string

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal. *)

val to_json : t -> string
(** One flat JSON object, no trailing newline. *)

val of_json : string -> t
(** Inverse of {!to_json}; raises {!Parse_error} on malformed input. *)

val pp : Format.formatter -> t -> unit
