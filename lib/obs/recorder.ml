(* Growable ring buffer of events. The backing array doubles until it
   reaches [capacity]; past that point the ring wraps and the oldest
   events are overwritten (counted in [overwritten]) so a runaway run
   cannot exhaust memory. *)

type t = {
  capacity : int;
  mutable buf : Event.t array;
  mutable first : int;  (* index of the oldest event *)
  mutable len : int;
  mutable overwritten : int;
}

(* Array.make needs a witness value; any constant event works and is
   never observable (only the first [len] logical slots are read). *)
let filler = Event.Round_end { round = 0 }

let default_capacity = 1 lsl 22

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be positive";
  { capacity; buf = Array.make (min capacity 1024) filler; first = 0; len = 0; overwritten = 0 }

let length t = t.len
let overwritten t = t.overwritten

let clear t =
  t.first <- 0;
  t.len <- 0;
  t.overwritten <- 0

let grow t =
  let old = t.buf in
  let n = Array.length old in
  let n' = min t.capacity (n * 2) in
  let buf = Array.make n' filler in
  for i = 0 to t.len - 1 do
    buf.(i) <- old.((t.first + i) mod n)
  done;
  t.buf <- buf;
  t.first <- 0

let record t e =
  let n = Array.length t.buf in
  if t.len = n && n < t.capacity then grow t;
  let n = Array.length t.buf in
  if t.len < n then begin
    t.buf.((t.first + t.len) mod n) <- e;
    t.len <- t.len + 1
  end
  else begin
    (* full at hard capacity: overwrite the oldest *)
    t.buf.(t.first) <- e;
    t.first <- (t.first + 1) mod n;
    t.overwritten <- t.overwritten + 1
  end

let to_list t =
  let n = Array.length t.buf in
  List.init t.len (fun i -> t.buf.((t.first + i) mod n))

let iter f t =
  let n = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.first + i) mod n)
  done

let sink t = Sink.make (record t)
