(* Typed trace-event vocabulary (DESIGN.md "Observability"). One
   constructor per observable model decision; every payload is plain
   integers/strings so events are self-contained and serializable
   without referencing engine or message types. Rounds follow the
   engine's convention: [Send.round] is the round the outbox was
   collected, [Deliver.round] the round whose inbox receives the copy
   (always > send_round). *)

type drop_reason =
  | Link  (* the adversary destroyed the copy on the wire *)
  | Receiver_down  (* the copy reached a crashed node at delivery time *)
  | Severed  (* the link was cut by an active partition window *)
  | Garbled  (* corrupted copy discarded as undecodable (no corrupt hook) *)
  | Straggler  (* the receiver cut the chronically late sender (deadline pacing) *)

type t =
  | Run_start of { label : string; faulty : bool }
  | Round_start of { round : int }
  | Round_end of { round : int }
  | Send of { round : int; src : int; dst : int; words : int }
  | Deliver of { send_round : int; round : int; src : int; dst : int; words : int }
  | Drop of {
      send_round : int;
      round : int;
      src : int;
      dst : int;
      words : int;
      reason : drop_reason;
    }
  | Duplicate of { round : int; src : int; dst : int; copies : int }
  | Delay of { round : int; src : int; dst : int; deliver_round : int }
  | Retransmit of { round : int; src : int; dst : int; seq : int }
  | Ack of { round : int; src : int; dst : int; seq : int }
  | Crash of { round : int; node : int }
  | Restart of { round : int; node : int }
  | Crash_window of {
      node : int;
      from_round : int;
      until_round : int option;
      amnesia : bool;
    }
  | Checkpoint of { round : int; node : int; words : int }
  | Recovery_resync of { round : int; node : int }
  | Partition of { round : int; src : int; dst : int }
  | Heal of { round : int; src : int; dst : int }
  | Corrupt of { send_round : int; deliver_round : int; src : int; dst : int }
  | Nack of { round : int; src : int; dst : int; seq : int }
  | Link_lost of { round : int; src : int; dst : int; seq : int; retries : int }
  | Suspect of { round : int; node : int; peer : int }
  | Clear of { round : int; node : int; peer : int }
  | Partition_window of {
      links : (int * int) list;
      nodes : int list;
      from_round : int;
      heal_round : int option;
    }
  | Pulse of { round : int; node : int; vt : int }
  | Safe of { round : int; node : int; vt : int }
  | Straggle of { round : int; node : int; factor : int; vt : int }
  | Skew of { node : int; offset : int }
  | Straggler_cut of { round : int; node : int; peer : int; vt : int }
  | Straggle_window of {
      node : int;
      from_round : int;
      until_round : int option;
      factor : int;
    }
  | Timing of { link_latency : int; skew : int; seed : int }

(* ------------------------------------------------------------------ *)
(* JSONL serialization. Each event is one flat JSON object whose "e"
   field names the constructor; remaining fields are ints except the
   run label. The parser below accepts exactly this shape. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json = function
  | Run_start { label; faulty } ->
      Printf.sprintf {|{"e":"run_start","label":"%s","faulty":%d}|} (json_escape label)
        (if faulty then 1 else 0)
  | Round_start { round } -> Printf.sprintf {|{"e":"round_start","round":%d}|} round
  | Round_end { round } -> Printf.sprintf {|{"e":"round_end","round":%d}|} round
  | Send { round; src; dst; words } ->
      Printf.sprintf {|{"e":"send","round":%d,"src":%d,"dst":%d,"words":%d}|} round src dst
        words
  | Deliver { send_round; round; src; dst; words } ->
      Printf.sprintf
        {|{"e":"deliver","send_round":%d,"round":%d,"src":%d,"dst":%d,"words":%d}|}
        send_round round src dst words
  | Drop { send_round; round; src; dst; words; reason } ->
      Printf.sprintf
        {|{"e":"drop","send_round":%d,"round":%d,"src":%d,"dst":%d,"words":%d,"reason":"%s"}|}
        send_round round src dst words
        (match reason with
        | Link -> "link"
        | Receiver_down -> "receiver"
        | Severed -> "severed"
        | Garbled -> "garbled"
        | Straggler -> "straggler")
  | Duplicate { round; src; dst; copies } ->
      Printf.sprintf {|{"e":"duplicate","round":%d,"src":%d,"dst":%d,"copies":%d}|} round src
        dst copies
  | Delay { round; src; dst; deliver_round } ->
      Printf.sprintf {|{"e":"delay","round":%d,"src":%d,"dst":%d,"deliver_round":%d}|} round
        src dst deliver_round
  | Retransmit { round; src; dst; seq } ->
      Printf.sprintf {|{"e":"retransmit","round":%d,"src":%d,"dst":%d,"seq":%d}|} round src dst
        seq
  | Ack { round; src; dst; seq } ->
      Printf.sprintf {|{"e":"ack","round":%d,"src":%d,"dst":%d,"seq":%d}|} round src dst seq
  | Crash { round; node } -> Printf.sprintf {|{"e":"crash","round":%d,"node":%d}|} round node
  | Restart { round; node } ->
      Printf.sprintf {|{"e":"restart","round":%d,"node":%d}|} round node
  | Crash_window { node; from_round; until_round; amnesia } ->
      Printf.sprintf {|{"e":"crash_window","node":%d,"from":%d,"until":%d,"amnesia":%d}|} node
        from_round
        (match until_round with Some u -> u | None -> -1)
        (if amnesia then 1 else 0)
  | Checkpoint { round; node; words } ->
      Printf.sprintf {|{"e":"checkpoint","round":%d,"node":%d,"words":%d}|} round node words
  | Recovery_resync { round; node } ->
      Printf.sprintf {|{"e":"recovery_resync","round":%d,"node":%d}|} round node
  | Partition { round; src; dst } ->
      Printf.sprintf {|{"e":"partition","round":%d,"src":%d,"dst":%d}|} round src dst
  | Heal { round; src; dst } ->
      Printf.sprintf {|{"e":"heal","round":%d,"src":%d,"dst":%d}|} round src dst
  | Corrupt { send_round; deliver_round; src; dst } ->
      Printf.sprintf
        {|{"e":"corrupt","send_round":%d,"deliver_round":%d,"src":%d,"dst":%d}|} send_round
        deliver_round src dst
  | Nack { round; src; dst; seq } ->
      Printf.sprintf {|{"e":"nack","round":%d,"src":%d,"dst":%d,"seq":%d}|} round src dst seq
  | Link_lost { round; src; dst; seq; retries } ->
      Printf.sprintf {|{"e":"link_lost","round":%d,"src":%d,"dst":%d,"seq":%d,"retries":%d}|}
        round src dst seq retries
  | Suspect { round; node; peer } ->
      Printf.sprintf {|{"e":"suspect","round":%d,"node":%d,"peer":%d}|} round node peer
  | Clear { round; node; peer } ->
      Printf.sprintf {|{"e":"clear","round":%d,"node":%d,"peer":%d}|} round node peer
  | Partition_window { links; nodes; from_round; heal_round } ->
      Printf.sprintf {|{"e":"partition_window","links":"%s","nodes":"%s","from":%d,"heal":%d}|}
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) links))
        (String.concat "," (List.map string_of_int nodes))
        from_round
        (match heal_round with Some h -> h | None -> -1)
  | Pulse { round; node; vt } ->
      Printf.sprintf {|{"e":"pulse","round":%d,"node":%d,"vt":%d}|} round node vt
  | Safe { round; node; vt } ->
      Printf.sprintf {|{"e":"safe","round":%d,"node":%d,"vt":%d}|} round node vt
  | Straggle { round; node; factor; vt } ->
      Printf.sprintf {|{"e":"straggle","round":%d,"node":%d,"factor":%d,"vt":%d}|} round node
        factor vt
  | Skew { node; offset } ->
      Printf.sprintf {|{"e":"skew","node":%d,"offset":%d}|} node offset
  | Straggler_cut { round; node; peer; vt } ->
      Printf.sprintf {|{"e":"straggler_cut","round":%d,"node":%d,"peer":%d,"vt":%d}|} round
        node peer vt
  | Straggle_window { node; from_round; until_round; factor } ->
      Printf.sprintf {|{"e":"straggle_window","node":%d,"from":%d,"until":%d,"factor":%d}|}
        node from_round
        (match until_round with Some u -> u | None -> -1)
        factor
  | Timing { link_latency; skew; seed } ->
      Printf.sprintf {|{"e":"timing","link_latency":%d,"skew":%d,"seed":%d}|} link_latency
        skew seed

(* ------------------------------------------------------------------ *)
(* Parsing: a minimal scanner for the flat objects produced above
   (string and integer values only). Not a general JSON parser. *)

exception Parse_error of string

type value = Int of int | Str of string

let fields_of_line line =
  let n = String.length line in
  let fail msg = raise (Parse_error (Printf.sprintf "%s in %S" msg line)) in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos >= n || line.[!pos] <> c then fail (Printf.sprintf "expected '%c'" c);
    incr pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            if !pos + 1 >= n then fail "dangling escape";
            (match line.[!pos + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | c -> fail (Printf.sprintf "unsupported escape '\\%c'" c));
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if !pos < n && line.[!pos] = '-' then incr pos;
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
      incr pos
    done;
    if !pos = start then fail "expected integer";
    match int_of_string_opt (String.sub line start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad integer"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if !pos < n && line.[!pos] = '}' then incr pos
  else begin
    let continue = ref true in
    while !continue do
      let key = parse_string () in
      expect ':';
      skip_ws ();
      let v = if !pos < n && line.[!pos] = '"' then Str (parse_string ()) else Int (parse_int ()) in
      fields := (key, v) :: !fields;
      skip_ws ();
      if !pos < n && line.[!pos] = ',' then incr pos
      else begin
        expect '}';
        continue := false
      end
    done
  end;
  List.rev !fields

let of_json line =
  let fields = fields_of_line line in
  let fail msg = raise (Parse_error (Printf.sprintf "%s in %S" msg line)) in
  let int key =
    match List.assoc_opt key fields with
    | Some (Int v) -> v
    | _ -> fail (Printf.sprintf "missing int field %S" key)
  in
  let str key =
    match List.assoc_opt key fields with
    | Some (Str v) -> v
    | _ -> fail (Printf.sprintf "missing string field %S" key)
  in
  match str "e" with
  | "run_start" -> Run_start { label = str "label"; faulty = int "faulty" <> 0 }
  | "round_start" -> Round_start { round = int "round" }
  | "round_end" -> Round_end { round = int "round" }
  | "send" -> Send { round = int "round"; src = int "src"; dst = int "dst"; words = int "words" }
  | "deliver" ->
      Deliver
        {
          send_round = int "send_round";
          round = int "round";
          src = int "src";
          dst = int "dst";
          words = int "words";
        }
  | "drop" ->
      Drop
        {
          send_round = int "send_round";
          round = int "round";
          src = int "src";
          dst = int "dst";
          words = int "words";
          reason =
            (match str "reason" with
            | "link" -> Link
            | "receiver" -> Receiver_down
            | "severed" -> Severed
            | "garbled" -> Garbled
            | "straggler" -> Straggler
            | r -> fail (Printf.sprintf "unknown drop reason %S" r));
        }
  | "duplicate" ->
      Duplicate { round = int "round"; src = int "src"; dst = int "dst"; copies = int "copies" }
  | "delay" ->
      Delay
        {
          round = int "round";
          src = int "src";
          dst = int "dst";
          deliver_round = int "deliver_round";
        }
  | "retransmit" ->
      Retransmit { round = int "round"; src = int "src"; dst = int "dst"; seq = int "seq" }
  | "ack" -> Ack { round = int "round"; src = int "src"; dst = int "dst"; seq = int "seq" }
  | "crash" -> Crash { round = int "round"; node = int "node" }
  | "restart" -> Restart { round = int "round"; node = int "node" }
  | "crash_window" ->
      Crash_window
        {
          node = int "node";
          from_round = int "from";
          until_round = (match int "until" with -1 -> None | u -> Some u);
          amnesia = int "amnesia" <> 0;
        }
  | "checkpoint" -> Checkpoint { round = int "round"; node = int "node"; words = int "words" }
  | "recovery_resync" -> Recovery_resync { round = int "round"; node = int "node" }
  | "partition" -> Partition { round = int "round"; src = int "src"; dst = int "dst" }
  | "heal" -> Heal { round = int "round"; src = int "src"; dst = int "dst" }
  | "corrupt" ->
      Corrupt
        {
          send_round = int "send_round";
          deliver_round = int "deliver_round";
          src = int "src";
          dst = int "dst";
        }
  | "nack" -> Nack { round = int "round"; src = int "src"; dst = int "dst"; seq = int "seq" }
  | "link_lost" ->
      Link_lost
        {
          round = int "round";
          src = int "src";
          dst = int "dst";
          seq = int "seq";
          retries = int "retries";
        }
  | "suspect" -> Suspect { round = int "round"; node = int "node"; peer = int "peer" }
  | "clear" -> Clear { round = int "round"; node = int "node"; peer = int "peer" }
  | "partition_window" ->
      let ints_of s =
        if s = "" then []
        else
          List.map
            (fun v ->
              match int_of_string_opt v with
              | Some i -> i
              | None -> fail (Printf.sprintf "bad member %S" v))
            (String.split_on_char ',' s)
      in
      let links_of s =
        if s = "" then []
        else
          List.map
            (fun l ->
              match String.split_on_char '-' l with
              | [ a; b ] -> (
                  match (int_of_string_opt a, int_of_string_opt b) with
                  | Some a, Some b -> (a, b)
                  | _ -> fail (Printf.sprintf "bad link %S" l))
              | _ -> fail (Printf.sprintf "bad link %S" l))
            (String.split_on_char ',' s)
      in
      Partition_window
        {
          links = links_of (str "links");
          nodes = ints_of (str "nodes");
          from_round = int "from";
          heal_round = (match int "heal" with -1 -> None | h -> Some h);
        }
  | "pulse" -> Pulse { round = int "round"; node = int "node"; vt = int "vt" }
  | "safe" -> Safe { round = int "round"; node = int "node"; vt = int "vt" }
  | "straggle" ->
      Straggle { round = int "round"; node = int "node"; factor = int "factor"; vt = int "vt" }
  | "skew" -> Skew { node = int "node"; offset = int "offset" }
  | "straggler_cut" ->
      Straggler_cut
        { round = int "round"; node = int "node"; peer = int "peer"; vt = int "vt" }
  | "straggle_window" ->
      Straggle_window
        {
          node = int "node";
          from_round = int "from";
          until_round = (match int "until" with -1 -> None | u -> Some u);
          factor = int "factor";
        }
  | "timing" ->
      Timing { link_latency = int "link_latency"; skew = int "skew"; seed = int "seed" }
  | e -> fail (Printf.sprintf "unknown event kind %S" e)

let pp fmt e = Format.pp_print_string fmt (to_json e)
