(* Trace export/import.

   - JSONL: one Event.t per line (the canonical on-disk format, what
     --trace writes and --replay / trace_cli read back).
   - Chrome trace-event JSON: loadable in Perfetto / chrome://tracing;
     one track (tid) per node plus a "rounds" track, message arrows as
     flow events ("s"/"f") tying each send slice to its delivery.
   - Per-edge congestion CSV for spreadsheet-level analysis. *)

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

(* ------------------------------------------------------------------ JSONL *)

let write_jsonl ~path events =
  with_out path (fun oc ->
      List.iter
        (fun e ->
          output_string oc (Event.to_json e);
          output_char oc '\n')
        events)

let read_jsonl ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (if String.length line = 0 then acc else Event.of_json line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* ------------------------------------------------------- run sectioning *)

type run = { label : string; faulty : bool; events : Event.t list }
(* [events] excludes the leading Run_start, in recording order. *)

let split_runs events =
  let runs = ref [] in
  let cur = ref None in
  let flush () =
    match !cur with
    | None -> ()
    | Some (label, faulty, acc) ->
        runs := { label; faulty; events = List.rev acc } :: !runs;
        cur := None
  in
  List.iter
    (fun e ->
      match (e : Event.t) with
      | Run_start { label; faulty } ->
          flush ();
          cur := Some (label, faulty, [])
      | e -> (
          match !cur with
          | Some (label, faulty, acc) -> cur := Some (label, faulty, e :: acc)
          | None ->
              (* tolerate traces without a Run_start header *)
              cur := Some ("run", false, [ e ])))
    events;
  flush ();
  List.rev !runs

let run_max_round r =
  List.fold_left
    (fun m (e : Event.t) ->
      match e with
      | Round_end { round } | Round_start { round } -> max m round
      | Deliver { round; _ } | Drop { round; _ } -> max m round
      | Delay { deliver_round; _ } -> max m deliver_round
      | _ -> m)
    0 r.events

let max_node r =
  List.fold_left
    (fun m (e : Event.t) ->
      match e with
      | Send { src; dst; _ }
      | Deliver { src; dst; _ }
      | Drop { src; dst; _ }
      | Duplicate { src; dst; _ }
      | Delay { src; dst; _ }
      | Retransmit { src; dst; _ }
      | Ack { src; dst; _ }
      | Partition { src; dst; _ }
      | Heal { src; dst; _ }
      | Corrupt { src; dst; _ }
      | Nack { src; dst; _ }
      | Link_lost { src; dst; _ } ->
          max m (max src dst)
      | Suspect { node; peer; _ } | Clear { node; peer; _ } -> max m (max node peer)
      | Crash { node; _ }
      | Restart { node; _ }
      | Crash_window { node; _ }
      | Checkpoint { node; _ }
      | Recovery_resync { node; _ } ->
          max m node
      | Partition_window { links; nodes; _ } ->
          let m = List.fold_left (fun m (a, b) -> max m (max a b)) m links in
          List.fold_left max m nodes
      | Pulse { node; _ }
      | Safe { node; _ }
      | Straggle { node; _ }
      | Skew { node; _ }
      | Straggle_window { node; _ } ->
          max m node
      | Straggler_cut { node; peer; _ } -> max m (max node peer)
      | Run_start _ | Round_start _ | Round_end _ | Timing _ -> m)
    (-1) r.events

(* ------------------------------------------------------------- Chrome *)

(* One synthetic microsecond-scale tick per round keeps slices readable
   in Perfetto regardless of real wall time. *)
let tick = 1000

let write_chrome ~path events =
  let runs = split_runs events in
  let nodes = List.fold_left (fun m r -> max m (max_node r)) (-1) runs + 1 in
  let rounds_tid = max nodes 1 in
  with_out path (fun oc ->
      let first = ref true in
      let obj fmt =
        Printf.ksprintf
          (fun s ->
            if !first then first := false else output_string oc ",\n";
            output_string oc s)
          fmt
      in
      output_string oc "[\n";
      obj {|{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"congest"}}|};
      for v = 0 to nodes - 1 do
        obj {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"node %d"}}|} v v
      done;
      obj {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"rounds"}}|}
        rounds_tid;
      let base = ref 0 in
      let flow_id = ref 0 in
      List.iter
        (fun r ->
          let span = (run_max_round r + 2) * tick in
          let ts round = !base + (round * tick) in
          obj {|{"name":"%s%s","cat":"run","ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d}|}
            (Event.json_escape r.label)
            (if r.faulty then " [faulty]" else "")
            !base span rounds_tid;
          (* flow ids keyed by (send_round, src, dst): unique within a
             run because the engine forbids two same-direction messages
             per round *)
          let ids : (int * int * int, int) Hashtbl.t = Hashtbl.create 256 in
          List.iter
            (fun (e : Event.t) ->
              match e with
              | Run_start _ -> ()
              | Round_start _ | Round_end _ -> ()
              | Send { round; src; dst; words } ->
                  incr flow_id;
                  Hashtbl.replace ids (round, src, dst) !flow_id;
                  obj
                    {|{"name":"send %d>%d","cat":"msg","ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{"round":%d,"words":%d}}|}
                    src dst (ts round) (tick / 2) src round words;
                  obj
                    {|{"name":"msg","cat":"msg","ph":"s","id":%d,"ts":%d,"pid":0,"tid":%d}|}
                    !flow_id
                    (ts round + (tick / 4))
                    src
              | Deliver { send_round; round; src; dst; words } ->
                  obj
                    {|{"name":"recv %d>%d","cat":"msg","ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{"send_round":%d,"words":%d}}|}
                    src dst (ts round) (tick / 2) dst send_round words;
                  (match Hashtbl.find_opt ids (send_round, src, dst) with
                  | Some id ->
                      obj
                        {|{"name":"msg","cat":"msg","ph":"f","bp":"e","id":%d,"ts":%d,"pid":0,"tid":%d}|}
                        id
                        (ts round + (tick / 4))
                        dst
                  | None -> ())
              | Drop { send_round; round; src; dst; reason; _ } ->
                  obj
                    {|{"name":"drop %d>%d (%s)","cat":"fault","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"send_round":%d}}|}
                    src dst
                    (match reason with
                    | Link -> "link"
                    | Receiver_down -> "receiver-down"
                    | Severed -> "severed"
                    | Garbled -> "garbled"
                    | Straggler -> "straggler")
                    (ts round)
                    (match reason with
                    | Receiver_down | Garbled | Straggler -> dst
                    | Link | Severed -> src)
                    send_round
              | Duplicate { round; src; dst; copies } ->
                  obj
                    {|{"name":"dup %d>%d x%d","cat":"fault","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    src dst copies (ts round) src
              | Delay { round; src; dst; deliver_round } ->
                  obj
                    {|{"name":"delay %d>%d +%d","cat":"fault","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    src dst
                    (deliver_round - round - 1)
                    (ts round) src
              | Retransmit { round; src; dst; seq } ->
                  obj
                    {|{"name":"rtx %d>%d #%d","cat":"transport","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    src dst seq (ts round) src
              | Ack { round; src; dst; seq } ->
                  obj
                    {|{"name":"ack %d>%d #%d","cat":"transport","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    src dst seq (ts round) src
              | Crash { round; node } ->
                  obj
                    {|{"name":"crash","cat":"fault","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    (ts round) node
              | Restart { round; node } ->
                  obj
                    {|{"name":"restart","cat":"fault","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    (ts round) node
              | Crash_window { node; from_round; until_round; amnesia } ->
                  let until = match until_round with Some u -> u | None -> run_max_round r + 1 in
                  obj
                    {|{"name":"%s","cat":"fault","ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d}|}
                    (if amnesia then "crashed (amnesia)" else "crashed (freeze)")
                    (ts from_round)
                    (max tick ((until - from_round) * tick))
                    node
              | Checkpoint { round; node; words } ->
                  obj
                    {|{"name":"checkpoint %dw","cat":"recovery","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    words (ts round) node
              | Recovery_resync { round; node } ->
                  obj
                    {|{"name":"resync done","cat":"recovery","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    (ts round) node
              | Partition { round; src; dst } ->
                  obj
                    {|{"name":"cut %d-%d","cat":"fault","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    src dst (ts round) src
              | Heal { round; src; dst } ->
                  obj
                    {|{"name":"heal %d-%d","cat":"fault","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    src dst (ts round) src
              | Corrupt { send_round; deliver_round; src; dst } ->
                  obj
                    {|{"name":"corrupt %d>%d","cat":"fault","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"send_round":%d}}|}
                    src dst (ts deliver_round) dst send_round
              | Nack { round; src; dst; seq } ->
                  obj
                    {|{"name":"nack %d>%d #%d","cat":"transport","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    src dst seq (ts round) src
              | Link_lost { round; src; dst; seq; retries } ->
                  obj
                    {|{"name":"link lost %d>%d #%d x%d","cat":"transport","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    src dst seq retries (ts round) src
              | Suspect { round; node; peer } ->
                  obj
                    {|{"name":"suspect %d","cat":"detector","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    peer (ts round) node
              | Clear { round; node; peer } ->
                  obj
                    {|{"name":"clear %d","cat":"detector","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    peer (ts round) node
              | Partition_window { from_round; heal_round; _ } ->
                  let heal = match heal_round with Some h -> h | None -> run_max_round r + 1 in
                  obj
                    {|{"name":"partition","cat":"fault","ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d}|}
                    (ts from_round)
                    (max tick ((heal - from_round) * tick))
                    rounds_tid
              (* synchronizer tracks: pulse begin / SAFE are instants on
                 the node's own track, placed at the logical round but
                 carrying the virtual time in args so Perfetto queries
                 can plot straggler drift *)
              | Pulse { round; node; vt } ->
                  obj
                    {|{"name":"pulse %d","cat":"sync","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"vt":%d}}|}
                    round (ts round) node vt
              | Safe { round; node; vt } ->
                  obj
                    {|{"name":"safe %d","cat":"sync","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"vt":%d}}|}
                    round (ts round) node vt
              | Straggle { round; node; factor; vt } ->
                  obj
                    {|{"name":"straggle x%d","cat":"fault","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"round":%d,"vt":%d}}|}
                    factor (ts round) node round vt
              | Skew { node; offset } ->
                  obj
                    {|{"name":"skew +%d","cat":"sync","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}|}
                    offset (ts 0) node
              | Straggler_cut { round; node; peer; vt } ->
                  obj
                    {|{"name":"cut straggler %d","cat":"sync","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"vt":%d}}|}
                    peer (ts round) node vt
              | Straggle_window { node; from_round; until_round; factor } ->
                  let until =
                    match until_round with Some u -> u | None -> run_max_round r + 1
                  in
                  obj
                    {|{"name":"straggler (x%d)","cat":"fault","ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d}|}
                    factor (ts from_round)
                    (max tick ((until - from_round) * tick))
                    node
              | Timing _ -> ())
            r.events;
          base := !base + span + tick)
        runs;
      output_string oc "\n]\n")

(* ---------------------------------------------------------------- CSV *)

type edge_stats = {
  mutable sent : int;
  mutable words : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable retransmits : int;
}

let write_congestion_csv ~path events =
  let runs = split_runs events in
  with_out path (fun oc ->
      output_string oc "run,label,src,dst,sent,words,delivered,dropped,retransmits\n";
      List.iteri
        (fun i r ->
          let tbl : (int * int, edge_stats) Hashtbl.t = Hashtbl.create 64 in
          let stats src dst =
            match Hashtbl.find_opt tbl (src, dst) with
            | Some s -> s
            | None ->
                let s = { sent = 0; words = 0; delivered = 0; dropped = 0; retransmits = 0 } in
                Hashtbl.replace tbl (src, dst) s;
                s
          in
          List.iter
            (fun (e : Event.t) ->
              match e with
              | Send { src; dst; words; _ } ->
                  let s = stats src dst in
                  s.sent <- s.sent + 1;
                  s.words <- s.words + words
              | Deliver { src; dst; _ } ->
                  let s = stats src dst in
                  s.delivered <- s.delivered + 1
              | Drop { src; dst; _ } ->
                  let s = stats src dst in
                  s.dropped <- s.dropped + 1
              | Retransmit { src; dst; _ } ->
                  let s = stats src dst in
                  s.retransmits <- s.retransmits + 1
              | _ -> ())
            r.events;
          let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
          let rows =
            List.sort
              (fun ((s1, d1), a) ((s2, d2), b) ->
                let c = Int.compare b.words a.words in
                if c <> 0 then c
                else
                  let c = Int.compare s1 s2 in
                  if c <> 0 then c else Int.compare d1 d2)
              rows
          in
          List.iter
            (fun ((src, dst), s) ->
              Printf.fprintf oc "%d,%s,%d,%d,%d,%d,%d,%d,%d\n" i r.label src dst s.sent
                s.words s.delivered s.dropped s.retransmits)
            rows)
        runs)
