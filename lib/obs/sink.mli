(** Event sink interface.

    Instrumented code (engine, transport, recovery) talks only to
    this type; concrete sinks (the ring-buffer {!Recorder}, file
    exporters) are built on top and never referenced by the engine.

    Contract for zero-cost disabled tracing: emit sites must test
    [enabled] before constructing the event, i.e.
    [if sink.enabled then Sink.emit sink (Event.Send {...})], so that
    with {!null} installed no event is ever allocated. *)

type t = { enabled : bool; emit : Event.t -> unit }

val null : t
(** Disabled sink: [enabled = false], [emit = ignore]. *)

val make : (Event.t -> unit) -> t
(** Enabled sink wrapping the given emit function. *)

val emit : t -> Event.t -> unit
