(* Critical-path analysis over a recorded run.

   The message-dependency DAG: a copy m2 sent by node v at round r2
   depends on every copy delivered to v at a round <= r2 (v's state
   when it produced m2 could reflect it). The longest dependency chain
   is computed with the DP best(v) = heaviest chain ending with a
   delivery at v; a send from v extends best(v), and the extended
   chain is captured at *send* time (best(v) may improve before the
   copy lands). One subtlety: the engine's per-node loop interleaves
   round-r sends with round-(r+1) deliveries in the event stream, so a
   delivery must not become visible to the DP until the round it lands
   in — deliveries are staged and committed at the next [Round_start].

   Chains are weighted in rounds, not messages: a hop costs
   [deliver_round - send_round], so a copy the adversary delayed — or
   a transport retransmission that only landed on a later attempt —
   stretches the chain by the rounds it actually spent in flight
   instead of counting as one. The heaviest chain weight lower-bounds
   the makespan of the recorded execution (its hops occupy disjoint
   round intervals): the "dilation" term of the dilation+congestion
   bounds the shortcut framework optimizes. On a fault-free trace
   every hop costs exactly one round and the weight equals the chain
   length, as before. *)

type link = { send_round : int; src : int; dst : int; deliver_round : int }

type report = {
  label : string;
  faulty : bool;
  rounds : int;  (* total rounds executed (= Metrics.rounds) *)
  nodes : int;
  sends : int;
  delivered : int;
  dropped : int;
  retransmits : int;
  bound : int;  (* makespan lower bound in rounds (chain weight) *)
  chain : link list;  (* heaviest dependency chain, causal order *)
  slack : (int * int) list;
      (* (node, bound - heaviest chain ending at the node), most
         critical first (slack 0 = on the critical path), top k *)
  idle : (int * int) list;  (* (node, idle rounds), worst first, top k *)
  congested : (int * int * int * int) list;
      (* (src, dst, words, sends), heaviest first, top k *)
  pulses : int;  (* async pulses observed (0 on synchronous traces) *)
  pulse_p50 : int;  (* pulse duration percentiles in vt units *)
  pulse_p99 : int;
  pulse_max : int;
  straggle_tail : (int * int * int) list;
      (* (node, straggled pulses, worst pulse duration in vt units),
         worst first, top k — the straggler tail of an async run *)
}

let chain_length r = List.length r.chain

let analyze ?(top = 5) (run : Trace_io.run) =
  let nodes = max (Trace_io.max_node run + 1) 1 in
  let rounds = Trace_io.run_max_round run + 1 in
  (* DP state: weight of, and the reversed chain behind, the heaviest
     dependency chain ending with a delivery at each node *)
  let best_w = Array.make nodes 0 in
  let best_chain = Array.make nodes [] in
  (* copies in flight: (send_round, src, dst) -> chain weight at send
     time and the candidate chain; the hop's own cost is only known at
     delivery *)
  let pending : (int * int * int, int * link list) Hashtbl.t = Hashtbl.create 1024 in
  (* deliveries staged until their round starts: (deliver_round, dst,
     weight, chain) — a round-(r+1) delivery appears in the stream
     during round r and must stay invisible to round-r sends *)
  let staged = ref [] in
  let commit_staged upto =
    let commit_now, keep =
      List.partition (fun (dr, _, _, _) -> dr <= upto) !staged
    in
    staged := keep;
    (* commit oldest first so a chain through two staged hops resolves
       in round order *)
    List.iter
      (fun (_, dst, w, chain) ->
        if w > best_w.(dst) then begin
          best_w.(dst) <- w;
          best_chain.(dst) <- chain
        end)
      (List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b) commit_now)
  in
  (* activity for idle accounting: marks arrive round-monotone per node *)
  let last_active = Array.make nodes (-1) in
  let active = Array.make nodes 0 in
  let mark v round =
    if last_active.(v) <> round then begin
      last_active.(v) <- round;
      active.(v) <- active.(v) + 1
    end
  in
  (* per-edge load: (src, dst) -> (words, sends) *)
  let load : (int * int, int ref * int ref) Hashtbl.t = Hashtbl.create 256 in
  let sends = ref 0 and delivered = ref 0 and dropped = ref 0 and retransmits = ref 0 in
  (* straggler tail of an async run: pulse durations (vt from Pulse to
     the node's Safe in the same pulse), plus per-node straggle counts *)
  let pulse_vt = Array.make nodes (-1) in
  let durations = ref [] in
  let n_durations = ref 0 in
  let straggles = Array.make nodes 0 in
  let worst_pulse = Array.make nodes 0 in
  List.iter
    (fun (e : Event.t) ->
      match e with
      | Send { round; src; dst; words } ->
          incr sends;
          mark src round;
          Hashtbl.replace pending (round, src, dst)
            ( best_w.(src),
              { send_round = round; src; dst; deliver_round = -1 } :: best_chain.(src) );
          let w, s =
            match Hashtbl.find_opt load (src, dst) with
            | Some p -> p
            | None ->
                let p = (ref 0, ref 0) in
                Hashtbl.replace load (src, dst) p;
                p
          in
          w := !w + words;
          incr s
      | Deliver { send_round; round; src; dst; _ } -> (
          incr delivered;
          mark dst round;
          match Hashtbl.find_opt pending (send_round, src, dst) with
          | Some (base, link :: prefix) ->
              (* the hop's cost is the rounds the copy spent in flight *)
              let w = base + max 1 (round - send_round) in
              staged := (round, dst, w, { link with deliver_round = round } :: prefix) :: !staged
          | Some (_, []) | None -> ())
      | Round_start { round } -> commit_staged round
      | Drop _ -> incr dropped
      | Retransmit _ -> incr retransmits
      | Pulse { node; vt; _ } -> pulse_vt.(node) <- vt
      | Safe { node; vt; _ } ->
          if pulse_vt.(node) >= 0 then begin
            let d = vt - pulse_vt.(node) in
            durations := d :: !durations;
            incr n_durations;
            if d > worst_pulse.(node) then worst_pulse.(node) <- d;
            pulse_vt.(node) <- -1
          end
      | Straggle { node; _ } -> straggles.(node) <- straggles.(node) + 1
      | _ -> ())
    run.events;
  commit_staged max_int;
  let winner = ref 0 in
  for v = 1 to nodes - 1 do
    if best_w.(v) > best_w.(!winner) then winner := v
  done;
  let bound = best_w.(!winner) in
  let chain = List.rev best_chain.(!winner) in
  let slack =
    List.init nodes (fun v -> (v, bound - best_w.(v)))
    |> List.filter (fun (v, _) -> active.(v) > 0)
    |> List.sort (fun (v1, s1) (v2, s2) ->
           let c = Int.compare s1 s2 in
           if c <> 0 then c else Int.compare v1 v2)
    |> List.filteri (fun i _ -> i < top)
  in
  let idle =
    List.init nodes (fun v -> (v, rounds - active.(v)))
    |> List.filter (fun (_, i) -> i > 0)
    |> List.sort (fun (v1, i1) (v2, i2) ->
           let c = Int.compare i2 i1 in
           if c <> 0 then c else Int.compare v1 v2)
    |> List.filteri (fun i _ -> i < top)
  in
  let congested =
    Hashtbl.fold (fun (src, dst) (w, s) acc -> (src, dst, !w, !s) :: acc) load []
    |> List.sort (fun (s1, d1, w1, _) (s2, d2, w2, _) ->
           let c = Int.compare w2 w1 in
           if c <> 0 then c
           else
             let c = Int.compare s1 s2 in
             if c <> 0 then c else Int.compare d1 d2)
    |> List.filteri (fun i _ -> i < top)
  in
  let pulse_p50, pulse_p99, pulse_max =
    if !n_durations = 0 then (0, 0, 0)
    else begin
      let a = Array.of_list !durations in
      Array.sort Int.compare a;
      let len = Array.length a in
      let pct p = a.(min (len - 1) (p * len / 100)) in
      (pct 50, pct 99, a.(len - 1))
    end
  in
  let straggle_tail =
    if !n_durations = 0 then []
    else
      List.init nodes (fun v -> (v, straggles.(v), worst_pulse.(v)))
      |> List.filter (fun (_, s, w) -> s > 0 || w > pulse_p99)
      |> List.sort (fun (v1, _, w1) (v2, _, w2) ->
             let c = Int.compare w2 w1 in
             if c <> 0 then c else Int.compare v1 v2)
      |> List.filteri (fun i _ -> i < top)
  in
  {
    label = run.label;
    faulty = run.faulty;
    rounds;
    nodes;
    sends = !sends;
    delivered = !delivered;
    dropped = !dropped;
    retransmits = !retransmits;
    bound;
    chain;
    slack;
    idle;
    congested;
    pulses = !n_durations;
    pulse_p50;
    pulse_p99;
    pulse_max;
    straggle_tail;
  }

let analyze_all ?top events = List.map (analyze ?top) (Trace_io.split_runs events)

let pp_report fmt r =
  let open Format in
  fprintf fmt "run %S%s: %d nodes, %d rounds, %d sends, %d delivered, %d dropped, %d rtx@,"
    r.label
    (if r.faulty then " [faulty]" else "")
    r.nodes r.rounds r.sends r.delivered r.dropped r.retransmits;
  fprintf fmt "  heaviest dependency chain: %d message(s)" (chain_length r);
  (match (r.chain, List.rev r.chain) with
  | first :: _, last :: _ ->
      fprintf fmt " spanning rounds %d..%d (makespan lower bound %d round(s), measured %d)@,"
        first.send_round last.deliver_round r.bound r.rounds;
      let shown = List.filteri (fun i _ -> i < 8) r.chain in
      List.iter
        (fun l ->
          fprintf fmt "    r%d: %d -> %d (delivered r%d)@," l.send_round l.src l.dst
            l.deliver_round)
        shown;
      if chain_length r > 8 then fprintf fmt "    ... (%d more)@," (chain_length r - 8)
  | _ -> fprintf fmt "@,");
  if r.slack <> [] then begin
    fprintf fmt "  critical nodes (lowest slack): ";
    List.iter (fun (v, s) -> fprintf fmt "node %d: %d  " v s) r.slack;
    fprintf fmt "@,"
  end;
  if r.idle <> [] then begin
    fprintf fmt "  idle rounds (top): ";
    List.iter (fun (v, i) -> fprintf fmt "node %d: %d  " v i) r.idle;
    fprintf fmt "@,"
  end;
  if r.congested <> [] then begin
    fprintf fmt "  congested edges (top):@,";
    List.iter
      (fun (src, dst, w, s) -> fprintf fmt "    %d -> %d: %d words over %d sends@," src dst w s)
      r.congested
  end;
  if r.pulses > 0 then begin
    fprintf fmt
      "  async pulses: %d (duration p50 %d, p99 %d, max %d vt)@," r.pulses
      r.pulse_p50 r.pulse_p99 r.pulse_max;
    if r.straggle_tail <> [] then begin
      fprintf fmt "  straggler tail (top):@,";
      List.iter
        (fun (v, s, w) ->
          fprintf fmt "    node %d: %d straggled pulse(s), worst pulse %d vt@," v s w)
        r.straggle_tail
    end
  end
