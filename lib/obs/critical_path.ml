(* Critical-path analysis over a recorded run.

   The message-dependency DAG: a copy m2 sent by node v at round r2
   depends on every copy delivered to v at a round <= r2 (v's state
   when it produced m2 could reflect it). The longest dependency chain
   is computed with the DP best(v) = longest chain ending with a
   delivery at v; a send from v extends best(v) by one, and the
   extended chain is captured at *send* time (best(v) may improve
   before the copy lands). One subtlety: the engine's per-node loop
   interleaves round-r sends with round-(r+1) deliveries in the event
   stream, so a delivery must not become visible to the DP until the
   round it lands in — deliveries are staged and committed at the next
   [Round_start]. The chain length lower-bounds the makespan of the same
   message pattern under *any* schedule (each chain message costs at
   least one round): the "dilation" term of the dilation+congestion
   bounds the shortcut framework optimizes. *)

type link = { send_round : int; src : int; dst : int; deliver_round : int }

type report = {
  label : string;
  faulty : bool;
  rounds : int;  (* total rounds executed (= Metrics.rounds) *)
  nodes : int;
  sends : int;
  delivered : int;
  dropped : int;
  retransmits : int;
  chain : link list;  (* longest dependency chain, causal order *)
  idle : (int * int) list;  (* (node, idle rounds), worst first, top k *)
  congested : (int * int * int * int) list;
      (* (src, dst, words, sends), heaviest first, top k *)
}

let chain_length r = List.length r.chain

let analyze ?(top = 5) (run : Trace_io.run) =
  let nodes = max (Trace_io.max_node run + 1) 1 in
  let rounds = Trace_io.run_max_round run + 1 in
  (* DP state: length of, and the reversed chain behind, the longest
     dependency chain ending with a delivery at each node *)
  let best_len = Array.make nodes 0 in
  let best_chain = Array.make nodes [] in
  (* copies in flight: (send_round, src, dst) -> candidate chain *)
  let pending : (int * int * int, int * link list) Hashtbl.t = Hashtbl.create 1024 in
  (* deliveries staged until their round starts: (deliver_round, dst,
     len, chain) — a round-(r+1) delivery appears in the stream during
     round r and must stay invisible to round-r sends *)
  let staged = ref [] in
  let commit_staged upto =
    let commit_now, keep =
      List.partition (fun (dr, _, _, _) -> dr <= upto) !staged
    in
    staged := keep;
    (* commit oldest first so a chain through two staged hops resolves
       in round order *)
    List.iter
      (fun (_, dst, len, chain) ->
        if len > best_len.(dst) then begin
          best_len.(dst) <- len;
          best_chain.(dst) <- chain
        end)
      (List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b) commit_now)
  in
  (* activity for idle accounting: marks arrive round-monotone per node *)
  let last_active = Array.make nodes (-1) in
  let active = Array.make nodes 0 in
  let mark v round =
    if last_active.(v) <> round then begin
      last_active.(v) <- round;
      active.(v) <- active.(v) + 1
    end
  in
  (* per-edge load: (src, dst) -> (words, sends) *)
  let load : (int * int, int ref * int ref) Hashtbl.t = Hashtbl.create 256 in
  let sends = ref 0 and delivered = ref 0 and dropped = ref 0 and retransmits = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      match e with
      | Send { round; src; dst; words } ->
          incr sends;
          mark src round;
          Hashtbl.replace pending (round, src, dst)
            ( best_len.(src) + 1,
              { send_round = round; src; dst; deliver_round = -1 } :: best_chain.(src) );
          let w, s =
            match Hashtbl.find_opt load (src, dst) with
            | Some p -> p
            | None ->
                let p = (ref 0, ref 0) in
                Hashtbl.replace load (src, dst) p;
                p
          in
          w := !w + words;
          incr s
      | Deliver { send_round; round; src; dst; _ } -> (
          incr delivered;
          mark dst round;
          match Hashtbl.find_opt pending (send_round, src, dst) with
          | Some (len, link :: prefix) ->
              staged := (round, dst, len, { link with deliver_round = round } :: prefix) :: !staged
          | Some (_, []) | None -> ())
      | Round_start { round } -> commit_staged round
      | Drop _ -> incr dropped
      | Retransmit _ -> incr retransmits
      | _ -> ())
    run.events;
  commit_staged max_int;
  let winner = ref 0 in
  for v = 1 to nodes - 1 do
    if best_len.(v) > best_len.(!winner) then winner := v
  done;
  let chain = List.rev best_chain.(!winner) in
  let idle =
    List.init nodes (fun v -> (v, rounds - active.(v)))
    |> List.filter (fun (_, i) -> i > 0)
    |> List.sort (fun (v1, i1) (v2, i2) ->
           let c = Int.compare i2 i1 in
           if c <> 0 then c else Int.compare v1 v2)
    |> List.filteri (fun i _ -> i < top)
  in
  let congested =
    Hashtbl.fold (fun (src, dst) (w, s) acc -> (src, dst, !w, !s) :: acc) load []
    |> List.sort (fun (s1, d1, w1, _) (s2, d2, w2, _) ->
           let c = Int.compare w2 w1 in
           if c <> 0 then c
           else
             let c = Int.compare s1 s2 in
             if c <> 0 then c else Int.compare d1 d2)
    |> List.filteri (fun i _ -> i < top)
  in
  {
    label = run.label;
    faulty = run.faulty;
    rounds;
    nodes;
    sends = !sends;
    delivered = !delivered;
    dropped = !dropped;
    retransmits = !retransmits;
    chain;
    idle;
    congested;
  }

let analyze_all ?top events = List.map (analyze ?top) (Trace_io.split_runs events)

let pp_report fmt r =
  let open Format in
  fprintf fmt "run %S%s: %d nodes, %d rounds, %d sends, %d delivered, %d dropped, %d rtx@,"
    r.label
    (if r.faulty then " [faulty]" else "")
    r.nodes r.rounds r.sends r.delivered r.dropped r.retransmits;
  fprintf fmt "  longest dependency chain: %d message(s)" (chain_length r);
  (match (r.chain, List.rev r.chain) with
  | first :: _, last :: _ ->
      fprintf fmt " spanning rounds %d..%d (makespan lower bound %d, measured %d)@,"
        first.send_round last.deliver_round (chain_length r) r.rounds;
      let shown = List.filteri (fun i _ -> i < 8) r.chain in
      List.iter
        (fun l ->
          fprintf fmt "    r%d: %d -> %d (delivered r%d)@," l.send_round l.src l.dst
            l.deliver_round)
        shown;
      if chain_length r > 8 then fprintf fmt "    ... (%d more)@," (chain_length r - 8)
  | _ -> fprintf fmt "@,");
  if r.idle <> [] then begin
    fprintf fmt "  idle rounds (top): ";
    List.iter (fun (v, i) -> fprintf fmt "node %d: %d  " v i) r.idle;
    fprintf fmt "@,"
  end;
  if r.congested <> [] then begin
    fprintf fmt "  congested edges (top):@,";
    List.iter
      (fun (src, dst, w, s) -> fprintf fmt "    %d -> %d: %d words over %d sends@," src dst w s)
      r.congested
  end
