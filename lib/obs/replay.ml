(* Deterministic record/replay.

   The engine is deterministic apart from the fault adversary's
   per-send decisions, and it forbids two same-direction messages on a
   link in one round — so within one [Engine.run] the triple
   (send_round, src, dst) uniquely identifies each adversary
   consultation. A recorded trace therefore captures the complete
   delivery schedule: each [Send] opens a fate entry, each
   [Deliver]/receiver-down [Drop] contributes one surviving copy's
   extra delay, and a fate left empty is a link drop. Replaying that
   schedule through a scripted adversary (with crash windows rebuilt
   from [Crash_window] events) reproduces the run exactly.

   A CLI invocation may call [Engine.run] several times (rounds restart
   at 0 each time), so fates are sectioned per *faulty* run in trace
   order; the scripted adversary's run counter selects the section. *)

exception Divergence of string

let () =
  Printexc.register_printer (function
    | Divergence msg -> Some ("Replay.Divergence: " ^ msg)
    | _ -> None)

type crash_window = {
  node : int;
  from_round : int;
  until_round : int option;
  amnesia : bool;
}

type t = {
  schedules : (int * int * int, int list) Hashtbl.t array;
  crashes : crash_window list;
}

let of_events events =
  let faulty_runs = List.filter (fun (r : Trace_io.run) -> r.faulty) (Trace_io.split_runs events) in
  let schedule_of_run (r : Trace_io.run) =
    let tbl : (int * int * int, int list) Hashtbl.t = Hashtbl.create 1024 in
    List.iter
      (fun (e : Event.t) ->
        match e with
        | Send { round; src; dst; _ } -> Hashtbl.replace tbl (round, src, dst) []
        | Deliver { send_round; round; src; dst; _ }
        | Drop { send_round; round; src; dst; reason = Receiver_down; _ } -> (
            (* one surviving copy, delivered [extra] rounds late
               (receiver-down copies survived the wire and still count) *)
            let extra = round - send_round - 1 in
            let key = (send_round, src, dst) in
            match Hashtbl.find_opt tbl key with
            | Some l -> Hashtbl.replace tbl key (extra :: l)
            | None ->
                raise
                  (Divergence
                     (Printf.sprintf "trace has a delivery for unrecorded send r%d %d->%d"
                        send_round src dst)))
        | Drop { reason = Link; _ } -> ()
        | _ -> ())
      r.events;
    (* sort each fate's copy delays: order among identical duplicates is
       unobservable, ascending is canonical *)
    Hashtbl.filter_map_inplace (fun _ l -> Some (List.sort Int.compare l)) tbl;
    tbl
  in
  let schedules = Array.of_list (List.map schedule_of_run faulty_runs) in
  (* crash windows repeat identically in every faulty section (one
     adversary per CLI invocation); keep the first section's list *)
  let crashes =
    match faulty_runs with
    | [] -> []
    | first :: _ ->
        List.filter_map
          (fun (e : Event.t) ->
            match e with
            | Crash_window { node; from_round; until_round; amnesia } ->
                Some { node; from_round; until_round; amnesia }
            | _ -> None)
          first.events
  in
  { schedules; crashes }

let runs t = Array.length t.schedules
let crashes t = t.crashes

let plan t ~run ~round ~src ~dst =
  if run < 0 || run >= Array.length t.schedules then
    raise
      (Divergence
         (Printf.sprintf "replay has %d faulty run(s) but the adversary was consulted in run %d"
            (Array.length t.schedules) run));
  match Hashtbl.find_opt t.schedules.(run) (round, src, dst) with
  | Some fate -> fate
  | None ->
      raise
        (Divergence
           (Printf.sprintf "no recorded fate for send r%d %d->%d in faulty run %d" round src
              dst run))
