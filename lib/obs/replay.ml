(* Deterministic record/replay.

   The engine is deterministic apart from the fault adversary's
   per-send decisions, and it forbids two same-direction messages on a
   link in one round — so within one [Engine.run] the triple
   (send_round, src, dst) uniquely identifies each adversary
   consultation. A recorded trace therefore captures the complete
   delivery schedule: each [Send] opens a fate entry, each
   [Deliver]/receiver-down [Drop] contributes one surviving copy's
   extra delay, a garbled [Drop] contributes a corrupted copy, and a
   fate left empty is a link drop; [Corrupt] events mark which
   delivered copies were garbled. Partition windows are deterministic
   (like crash windows): the engine re-applies them itself, so replay
   only reconstructs them from the static [Partition_window] events —
   severed sends never consult the adversary. Replaying the schedule
   through a scripted adversary reproduces the run exactly.

   A CLI invocation may call [Engine.run] several times (rounds restart
   at 0 each time), so fates are sectioned per *faulty* run in trace
   order; the scripted adversary's run counter selects the section. *)

exception Divergence of string

let () =
  Printexc.register_printer (function
    | Divergence msg -> Some ("Replay.Divergence: " ^ msg)
    | _ -> None)

type crash_window = {
  node : int;
  from_round : int;
  until_round : int option;
  amnesia : bool;
}

type partition_window = {
  links : (int * int) list;
  nodes : int list;
  p_from_round : int;
  heal_round : int option;
}

type straggle_window = {
  s_node : int;
  s_from_round : int;
  s_until_round : int option;
  s_factor : int;
}

type timing = { link_latency : int; skew : int; timing_seed : int }

(* a copy's recorded fate: (extra delay rounds, corrupted in flight) *)
type t = {
  schedules : (int * int * int, (int * bool) list) Hashtbl.t array;
  crashes : crash_window list;
  partitions : partition_window list;
  stragglers : straggle_window list;
  timing : timing option;
}

let of_events events =
  let faulty_runs = List.filter (fun (r : Trace_io.run) -> r.faulty) (Trace_io.split_runs events) in
  let schedule_of_run (r : Trace_io.run) =
    let tbl : (int * int * int, (int * bool) list) Hashtbl.t = Hashtbl.create 1024 in
    (* extras (per key) that [Corrupt] events say must carry the flag *)
    let corrupts : (int * int * int, int list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (e : Event.t) ->
        match e with
        | Send { round; src; dst; _ } -> Hashtbl.replace tbl (round, src, dst) []
        | Deliver { send_round; round; src; dst; _ }
        | Drop { send_round; round; src; dst; reason = Receiver_down; _ }
        | Drop { send_round; round; src; dst; reason = Straggler; _ }
        | Drop { send_round; round; src; dst; reason = Garbled; _ } -> (
            (* one surviving copy, delivered [extra] rounds late
               (receiver-down and garbled copies survived the wire and
               still count; garbled ones are known corrupt already) *)
            (* receiver-down, straggler-cut and garbled copies survived
               the wire and still count as surviving fates *)
            let extra = round - send_round - 1 in
            let corrupt =
              match e with Drop { reason = Garbled; _ } -> true | _ -> false
            in
            let key = (send_round, src, dst) in
            match Hashtbl.find_opt tbl key with
            | Some l -> Hashtbl.replace tbl key ((extra, corrupt) :: l)
            | None ->
                raise
                  (Divergence
                     (Printf.sprintf "trace has a delivery for unrecorded send r%d %d->%d"
                        send_round src dst)))
        | Corrupt { send_round; deliver_round; src; dst } ->
            let key = (send_round, src, dst) in
            let extra = deliver_round - send_round - 1 in
            Hashtbl.replace corrupts key
              (extra :: (Option.value ~default:[] (Hashtbl.find_opt corrupts key)))
        | Drop { reason = Link; _ } | Drop { reason = Severed; _ } -> ()
        | _ -> ())
      r.events;
    (* reattach corrupt flags: each [Corrupt] entry accounts for one
       copy with that extra delay; garbled drops already carry theirs *)
    Hashtbl.iter
      (fun key extras ->
        match Hashtbl.find_opt tbl key with
        | None ->
            let r0, src, dst = key in
            raise
              (Divergence
                 (Printf.sprintf "trace corrupts an unrecorded send r%d %d->%d" r0 src dst))
        | Some fates ->
            (* per extra delay: [Corrupt] events required minus copies
               already marked by garbled drops = copies left to flip *)
            let to_flip = Hashtbl.create 4 in
            let bump tbl e k =
              Hashtbl.replace tbl e (k + Option.value ~default:0 (Hashtbl.find_opt tbl e))
            in
            List.iter (fun e -> bump to_flip e 1) extras;
            List.iter (fun (e, c) -> if c then bump to_flip e (-1)) fates;
            let fates =
              List.map
                (fun (e, c) ->
                  let left = Option.value ~default:0 (Hashtbl.find_opt to_flip e) in
                  if (not c) && left > 0 then begin
                    Hashtbl.replace to_flip e (left - 1);
                    (e, true)
                  end
                  else (e, c))
                fates
            in
            Hashtbl.iter
              (fun _ left ->
                if left > 0 then
                  let r0, src, dst = key in
                  raise
                    (Divergence
                       (Printf.sprintf "corrupt event with no matching copy for send r%d %d->%d"
                          r0 src dst)))
              to_flip;
            Hashtbl.replace tbl key fates)
      corrupts;
    (* sort each fate's copies: order among identical duplicates is
       unobservable, (delay, corrupt) ascending is canonical *)
    Hashtbl.filter_map_inplace
      (fun _ l -> Some (List.sort (fun (a, ca) (b, cb) ->
           match Int.compare a b with 0 -> Bool.compare ca cb | c -> c) l))
      tbl;
    tbl
  in
  let schedules = Array.of_list (List.map schedule_of_run faulty_runs) in
  (* crash/partition windows repeat identically in every faulty section
     (one adversary per CLI invocation); keep the first section's *)
  let crashes, partitions, stragglers, timing =
    match faulty_runs with
    | [] -> ([], [], [], None)
    | first :: _ ->
        ( List.filter_map
            (fun (e : Event.t) ->
              match e with
              | Crash_window { node; from_round; until_round; amnesia } ->
                  Some { node; from_round; until_round; amnesia }
              | _ -> None)
            first.events,
          List.filter_map
            (fun (e : Event.t) ->
              match e with
              | Partition_window { links; nodes; from_round; heal_round } ->
                  Some { links; nodes; p_from_round = from_round; heal_round }
              | _ -> None)
            first.events,
          List.filter_map
            (fun (e : Event.t) ->
              match e with
              | Straggle_window { node; from_round; until_round; factor } ->
                  Some
                    {
                      s_node = node;
                      s_from_round = from_round;
                      s_until_round = until_round;
                      s_factor = factor;
                    }
              | _ -> None)
            first.events,
          List.find_map
            (fun (e : Event.t) ->
              match e with
              | Timing { link_latency; skew; seed } ->
                  Some { link_latency; skew; timing_seed = seed }
              | _ -> None)
            first.events )
  in
  { schedules; crashes; partitions; stragglers; timing }

let runs t = Array.length t.schedules
let crashes t = t.crashes
let partitions t = t.partitions
let stragglers t = t.stragglers
let timing t = t.timing

let plan t ~run ~round ~src ~dst =
  if run < 0 || run >= Array.length t.schedules then
    raise
      (Divergence
         (Printf.sprintf "replay has %d faulty run(s) but the adversary was consulted in run %d"
            (Array.length t.schedules) run));
  match Hashtbl.find_opt t.schedules.(run) (round, src, dst) with
  | Some fate -> fate
  | None ->
      raise
        (Divergence
           (Printf.sprintf "no recorded fate for send r%d %d->%d in faulty run %d" round src
              dst run))
