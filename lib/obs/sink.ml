(* The single interface instrumented code sees. Emit sites must guard
   with [enabled] BEFORE constructing an event so the disabled path
   allocates nothing:

     if sink.enabled then Sink.emit sink (Event.Send { ... })

   The engine holds a [t ref] and never references a concrete sink
   implementation (Recorder, file writers, ...). *)

type t = { enabled : bool; emit : Event.t -> unit }

let null = { enabled = false; emit = ignore }
let make emit = { enabled = true; emit }
(* on the guarded hot path of every emit site: must not allocate *)
let emit t e = t.emit e [@@hot]
