(** Stateful walk constraints (Definition 2 of the paper).

    A constraint is a finite state set Q containing a reject state (bot)
    and a start state (nabla), plus a transition function per edge.
    States are represented as integers in [0, q_size); the transition
    must map bot to bot (condition 3). The walk set C is "all walks whose
    state is not bot".

    Constructors cover the paper's two worked examples — c-colored walks
    (Example 1, used by matching) and count-c walks (Example 2, used by
    girth) — plus two extra constraints exercised by tests and examples.

    Edge "labels" are read from [Digraph.edge.label]. *)

type t = {
  name : string;
  q_size : int;  (** |Q| *)
  bot : int;  (** reject state *)
  start : int;  (** nabla, state of the empty walk *)
  delta : Repro_graph.Digraph.edge -> int -> int;  (** per-edge transition *)
}

(** [colored ~colors] — no two consecutive edges share a label
    (Example 1). States: bot, nabla, then one state per color;
    [q_size = colors + 2]. Edge labels must lie in [0, colors). *)
val colored : colors:int -> t

(** [count ~limit] — at most [limit] edges with label 1 (Example 2).
    States: bot, nabla, then counts 0..limit; [q_size = limit + 3].
    Labels are treated as 0/1 (any nonzero label counts as 1). *)
val count : limit:int -> t

(** [forbidden] — walks that avoid label-1 edges entirely (count 0);
    3 states. *)
val forbidden : t

(** [parity] — tracks the parity of label-1 edges; never rejects.
    4 states: bot (unreachable), nabla, even, odd. *)
val parity : t

(** [state_index_count c k] is the state representing "seen exactly [k]
    label-1 edges" of a [count] constraint (for querying exact count-k
    distances, Section 5.1 "subsets of stateful walk constraints"). *)
val state_index_count : t -> int -> int

(** [state_index_color c col] is the state "last edge had color [col]"
    of a [colored] constraint. *)
val state_index_color : t -> int -> int

(** [walk_state c g edges] folds the transition over a walk given as
    edge ids (the function M_C); [Error] if the sequence is not a walk.
    Test oracle for the product construction. Starting vertex is taken
    from the first edge's source; for undirected graphs, orientation is
    resolved greedily. *)
val walk_state : t -> Repro_graph.Digraph.t -> int list -> (int, string) result

(** [of_dfa ~name ~states ~delta] — walks whose edge-label sequence is
    accepted step-by-step by a deterministic automaton: [delta s l] is
    the next DFA state on label [l] from state [s], or [None] to reject.
    The empty walk has state nabla; the first edge transitions from DFA
    state 0. Generalizes {!colored} and {!count}; query distances per
    accepting DFA state with {!state_index_dfa}. *)
val of_dfa : name:string -> states:int -> delta:(int -> int -> int option) -> t

(** [state_index_dfa c s] is the walk state corresponding to DFA state
    [s] of an [of_dfa] constraint. *)
val state_index_dfa : t -> int -> int
