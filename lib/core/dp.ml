module Digraph = Repro_graph.Digraph
module Metrics = Repro_congest.Metrics
module Part = Repro_shortcut.Part
module Primitives = Repro_shortcut.Primitives
module Nice = Repro_treedec.Nice

type 'a result = { value : 'a; witness : int list; table_words : int }

exception Witness_failure of string

let () =
  Printexc.register_printer (function
    | Witness_failure detail -> Some (Printf.sprintf "Dp.Witness_failure: %s" detail)
    | _ -> None)

let witness_failure fmt = Printf.ksprintf (fun s -> raise (Witness_failure s)) fmt

let bot = min_int / 4
let top = max_int / 4

let adjacency g =
  let tbl = Hashtbl.create (Digraph.m g) in
  Array.iter
    (fun e ->
      if e.Digraph.src <> e.Digraph.dst then begin
        Hashtbl.replace tbl (e.Digraph.src, e.Digraph.dst) ();
        Hashtbl.replace tbl (e.Digraph.dst, e.Digraph.src) ()
      end)
    (Digraph.edges (Digraph.skeleton g));
  fun u v -> Hashtbl.mem tbl (u, v)

let index_of bag v =
  let rec go i = if bag.(i) = v then i else go (i + 1) in
  go 0

(* nice-tree depth: the number of sequential table exchanges *)
let rec depth (t : Nice.t) =
  match t.Nice.node with
  | Nice.Leaf -> 1
  | Nice.Introduce (_, c) | Nice.Forget (_, c) -> 1 + depth c
  | Nice.Join (a, b) -> 1 + max (depth a) (depth b)

let charge g nice ~table_words ~metrics ~label =
  let parts = Part.make_unchecked g [| Array.init (Digraph.n g) Fun.id |] in
  let b = Primitives.basis parts ~metrics in
  Metrics.add metrics ~label (depth nice * Primitives.bct_rounds b ~h:table_words)

let max_bag_size (t : Nice.t) =
  let rec go acc = function
    | [] -> acc
    | (t : Nice.t) :: rest ->
        let acc = max acc (Array.length t.Nice.bag) in
        let rest =
          match t.Nice.node with
          | Nice.Leaf -> rest
          | Nice.Introduce (_, c) | Nice.Forget (_, c) -> c :: rest
          | Nice.Join (a, b) -> a :: b :: rest
        in
        go acc rest
  in
  go 0 [ t ]

(* ------------------------------------------------------------------ *)
(* Maximum weight independent set *)

let max_weight_independent_set ?weights g nice ~metrics =
  let n = Digraph.n g in
  let w v = match weights with Some ws -> ws.(v) | None -> 1 in
  let adj = adjacency g in
  let bmax = max_bag_size nice in
  if bmax > 20 then
    invalid_arg "Dp.max_weight_independent_set: decomposition width too large";
  (* solve returns (values indexed by bag subset mask, witness mask -> set) *)
  let rec solve (t : Nice.t) : int array * (int -> int list) =
    let bag = t.Nice.bag in
    let b = Array.length bag in
    match t.Nice.node with
    | Nice.Leaf -> ([| 0 |], fun _ -> [])
    | Nice.Introduce (v, c) ->
        let vc, recon_c = solve c in
        let vi = index_of bag v in
        let child_bit i = if i < vi then i else i - 1 in
        let compress m =
          let mc = ref 0 in
          for i = 0 to b - 1 do
            if i <> vi && m land (1 lsl i) <> 0 then mc := !mc lor (1 lsl child_bit i)
          done;
          !mc
        in
        let values =
          Array.init (1 lsl b) (fun m ->
              let mc = compress m in
              if m land (1 lsl vi) = 0 then vc.(mc)
              else begin
                let conflict = ref false in
                for i = 0 to b - 1 do
                  if i <> vi && m land (1 lsl i) <> 0 && adj v bag.(i) then
                    conflict := true
                done;
                if !conflict || vc.(mc) <= bot then bot else vc.(mc) + w v
              end)
        in
        let recon m =
          let rest = recon_c (compress m) in
          if m land (1 lsl vi) <> 0 then v :: rest else rest
        in
        (values, recon)
    | Nice.Forget (v, c) ->
        let vc, recon_c = solve c in
        let cbag = (match t.Nice.node with Nice.Forget (_, cc) -> cc.Nice.bag | _ -> assert false) in
        let ci = index_of cbag v in
        let expand m keep =
          (* insert bit [keep] for v at child position ci *)
          let low = m land ((1 lsl ci) - 1) in
          let high = (m lsr ci) lsl (ci + 1) in
          low lor high lor (keep lsl ci)
        in
        let values =
          Array.init (1 lsl b) (fun m -> max vc.(expand m 0) vc.(expand m 1))
        in
        let recon m =
          if vc.(expand m 1) > vc.(expand m 0) then recon_c (expand m 1)
          else recon_c (expand m 0)
        in
        (values, recon)
    | Nice.Join (a, bb) ->
        let va, recon_a = solve a in
        let vb, recon_b = solve bb in
        let mask_weight m =
          let acc = ref 0 in
          for i = 0 to b - 1 do
            if m land (1 lsl i) <> 0 then acc := !acc + w bag.(i)
          done;
          !acc
        in
        let values =
          Array.init (1 lsl b) (fun m ->
              if va.(m) <= bot || vb.(m) <= bot then bot
              else va.(m) + vb.(m) - mask_weight m)
        in
        let recon m = recon_a m @ recon_b m in
        (values, recon)
  in
  let values, recon = solve nice in
  let value = values.(0) in
  let witness = List.sort_uniq compare (recon 0) in
  (* verify the witness *)
  List.iter
    (fun u ->
      List.iter (fun v -> if u <> v && adj u v then witness_failure "mis: witness vertices %d and %d are adjacent" u v)
        witness)
    witness;
  let wsum = List.fold_left (fun acc v -> acc + w v) 0 witness in
  if wsum <> value then witness_failure "mis: witness weighs %d, table says %d" wsum value;
  ignore n;
  let table_words = 1 lsl bmax in
  charge g nice ~table_words ~metrics ~label:"dp/mis";
  { value; witness; table_words }

let min_vertex_cover g nice ~metrics =
  let r = max_weight_independent_set g nice ~metrics in
  let n = Digraph.n g in
  let in_is = Array.make n false in
  List.iter (fun v -> in_is.(v) <- true) r.witness;
  let cover = List.filter (fun v -> not in_is.(v)) (List.init n Fun.id) in
  (* verify: every edge covered *)
  Array.iter
    (fun e ->
      if e.Digraph.src <> e.Digraph.dst && in_is.(e.Digraph.src) && in_is.(e.Digraph.dst)
      then witness_failure "mvc: edge %d-%d not covered" e.Digraph.src e.Digraph.dst)
    (Digraph.edges (Digraph.skeleton g));
  { value = n - r.value; witness = cover; table_words = r.table_words }

(* ------------------------------------------------------------------ *)
(* Minimum dominating set: 3-state DP (0 = black/in set, 1 = white/
   dominated, 2 = grey/not yet dominated) over base-3 masks. *)

let pow3 = Array.init 14 (fun i -> int_of_float (3.0 ** float_of_int i))

let state m i = m / pow3.(i) mod 3
let set_state m i s = m + ((s - state m i) * pow3.(i))

let min_dominating_set g nice ~metrics =
  let adj = adjacency g in
  let bmax = max_bag_size nice in
  if bmax > 12 then invalid_arg "Dp.min_dominating_set: decomposition width too large";
  let rec solve (t : Nice.t) : int array * (int -> int list) =
    let bag = t.Nice.bag in
    let b = Array.length bag in
    match t.Nice.node with
    | Nice.Leaf -> ([| 0 |], fun _ -> [])
    | Nice.Introduce (v, c) ->
        let vc, recon_c = solve c in
        let vi = index_of bag v in
        let compress m =
          (* drop v's trit *)
          let mc = ref 0 and j = ref 0 in
          for i = 0 to b - 1 do
            if i <> vi then begin
              mc := !mc + (state m i * pow3.(!j));
              incr j
            end
          done;
          !mc
        in
        (* bag neighbors of v (parent positions, excluding v) *)
        let nbrs =
          List.filter (fun i -> i <> vi && adj v bag.(i)) (List.init b Fun.id)
        in
        let child_pos i = if i < vi then i else i - 1 in
        let values_and_choice =
          Array.init pow3.(b) (fun m ->
              let sv = state m vi in
              let mc = compress m in
              match sv with
              | 2 -> (vc.(mc), mc)
              | 1 ->
                  (* white at introduce: must already be dominated by a
                     black bag neighbor *)
                  if List.exists (fun i -> state m i = 0) nbrs then (vc.(mc), mc)
                  else (top, mc)
              | 0 ->
                  (* black: each white bag neighbor may have been grey in
                     the child (v dominates it now) *)
                  let white_nbrs = List.filter (fun i -> state m i = 1) nbrs in
                  let k = List.length white_nbrs in
                  let best = ref top and best_mc = ref mc in
                  for sub = 0 to (1 lsl k) - 1 do
                    let mc' = ref mc in
                    List.iteri
                      (fun idx i ->
                        if sub land (1 lsl idx) <> 0 then
                          mc' := set_state !mc' (child_pos i) 2)
                      white_nbrs;
                    if vc.(!mc') < !best then begin
                      best := vc.(!mc');
                      best_mc := !mc'
                    end
                  done;
                  ((if !best >= top then top else !best + 1), !best_mc)
              | _ -> assert false)
        in
        let values = Array.map fst values_and_choice in
        let recon m =
          let v_included = state m vi = 0 in
          let mc = snd values_and_choice.(m) in
          let rest = recon_c mc in
          if v_included then v :: rest else rest
        in
        (values, recon)
    | Nice.Forget (v, c) ->
        let vc, recon_c = solve c in
        let cbag = (match t.Nice.node with Nice.Forget (_, cc) -> cc.Nice.bag | _ -> assert false) in
        let ci = index_of cbag v in
        let expand m s =
          (* insert trit s for v at child position ci *)
          let low = m mod pow3.(ci) in
          let high = m / pow3.(ci) * pow3.(ci + 1) in
          low + high + (s * pow3.(ci))
        in
        let values =
          Array.init pow3.(b) (fun m -> min vc.(expand m 0) vc.(expand m 1))
        in
        let recon m =
          if vc.(expand m 0) <= vc.(expand m 1) then recon_c (expand m 0)
          else recon_c (expand m 1)
        in
        (values, recon)
    | Nice.Join (a, bb) ->
        let va, recon_a = solve a in
        let vb, recon_b = solve bb in
        let values_and_choice =
          Array.init pow3.(b) (fun m ->
              let whites = List.filter (fun i -> state m i = 1) (List.init b Fun.id) in
              let blacks =
                List.length (List.filter (fun i -> state m i = 0) (List.init b Fun.id))
              in
              let k = List.length whites in
              let best = ref top and best_pair = ref (m, m) in
              for sub = 0 to (1 lsl k) - 1 do
                (* whites in [sub] are dominated on side a, the rest on b *)
                let ma = ref m and mb = ref m in
                List.iteri
                  (fun idx i ->
                    if sub land (1 lsl idx) <> 0 then mb := set_state !mb i 2
                    else ma := set_state !ma i 2)
                  whites;
                if va.(!ma) < top && vb.(!mb) < top then begin
                  let v = va.(!ma) + vb.(!mb) - blacks in
                  if v < !best then begin
                    best := v;
                    best_pair := (!ma, !mb)
                  end
                end
              done;
              (!best, !best_pair))
        in
        let values = Array.map fst values_and_choice in
        let recon m =
          let ma, mb = snd values_and_choice.(m) in
          recon_a ma @ recon_b mb
        in
        (values, recon)
  in
  let values, recon = solve nice in
  let value = values.(0) in
  let witness = List.sort_uniq compare (recon 0) in
  (* verify domination *)
  let n = Digraph.n g in
  let dominated = Array.make n false in
  let skeleton = Digraph.skeleton g in
  List.iter
    (fun v ->
      dominated.(v) <- true;
      Array.iter (fun u -> dominated.(u) <- true) (Digraph.neighbors skeleton v))
    witness;
  if not (Array.for_all Fun.id dominated) then witness_failure "domset: some vertex is not dominated";
  if List.length witness <> value then
    witness_failure "domset: witness has %d vertices, table says %d" (List.length witness) value;
  let table_words = pow3.(bmax) in
  charge g nice ~table_words ~metrics ~label:"dp/domset";
  { value; witness; table_words }

(* ------------------------------------------------------------------ *)
(* Steiner tree: partition-state DP. A state is (selected bag subset,
   canonical partition of the selected vertices into connected blocks,
   closed flag). Edges are bought when their later endpoint is
   introduced; a component may only be closed (its last bag vertex
   forgotten while still a singleton block) if it is the unique block —
   the finished tree. *)

type skey = { smask : int; spart : int list; closed : bool }

let canonical_partition part =
  let map = Hashtbl.create 8 in
  let next = ref 0 in
  List.map
    (fun b ->
      match Hashtbl.find_opt map b with
      | Some c -> c
      | None ->
          let c = !next in
          incr next;
          Hashtbl.add map b c;
          c)
    part

let selected_positions mask b =
  List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init b Fun.id)

let steiner_tree g nice ~terminals ~metrics =
  let n = Digraph.n g in
  let bmax = max_bag_size nice in
  if bmax > 8 then invalid_arg "Dp.steiner_tree: decomposition width too large";
  let is_terminal = Array.make n false in
  List.iter (fun t -> is_terminal.(t) <- true) terminals;
  (* cheapest undirected edge between two vertices: (weight, edge id) *)
  let best_edge = Hashtbl.create (Digraph.m g) in
  Array.iter
    (fun e ->
      if e.Digraph.src <> e.Digraph.dst then begin
        let record u v =
          let cand = (e.Digraph.weight, e.Digraph.id) in
          match Hashtbl.find_opt best_edge (u, v) with
          | Some old when old <= cand -> ()
          | _ -> Hashtbl.replace best_edge (u, v) cand
        in
        record e.Digraph.src e.Digraph.dst;
        record e.Digraph.dst e.Digraph.src
      end)
    (Digraph.edges g);
  let max_states = ref 1 in
  let add tbl key cost edges =
    match Hashtbl.find_opt tbl key with
    | Some (c, _) when c <= cost -> ()
    | _ -> Hashtbl.replace tbl key (cost, edges)
  in
  let rec solve (t : Nice.t) =
    let bag = t.Nice.bag in
    let b = Array.length bag in
    let out : (skey, int * int list) Hashtbl.t = Hashtbl.create 64 in
    (match t.Nice.node with
    | Nice.Leaf -> add out { smask = 0; spart = []; closed = false } 0 []
    | Nice.Introduce (v, c) ->
        let tc = solve c in
        let vi = index_of bag v in
        let parent_pos j = if j < vi then j else j + 1 in
        Hashtbl.iter
          (fun key (cost, edges) ->
            (* re-express the child mask in parent positions *)
            let cb = Array.length c.Nice.bag in
            let pmask0 = ref 0 in
            for j = 0 to cb - 1 do
              if key.smask land (1 lsl j) <> 0 then
                pmask0 := !pmask0 lor (1 lsl parent_pos j)
            done;
            let pmask0 = !pmask0 in
            (* (a) v stays out of the tree — impossible for terminals *)
            if not is_terminal.(v) then
              add out { key with smask = pmask0 } cost edges;
            (* (b) v joins the tree, possibly buying edges to selected
               bag neighbors *)
            if not key.closed then begin
              let sel = selected_positions pmask0 b in
              let candidates =
                List.filter
                  (fun i -> Hashtbl.mem best_edge (v, bag.(i)))
                  sel
              in
              let k = List.length candidates in
              for sub = 0 to (1 lsl k) - 1 do
                let bought = ref [] and extra = ref 0 in
                let picked = ref [] in
                List.iteri
                  (fun idx i ->
                    if sub land (1 lsl idx) <> 0 then begin
                      let w, ei = Hashtbl.find best_edge (v, bag.(i)) in
                      extra := !extra + w;
                      bought := ei :: !bought;
                      picked := i :: !picked
                    end)
                  candidates;
                (* new partition over selected parent positions (v fresh) *)
                let fresh = b + 1 in
                let positions = selected_positions (pmask0 lor (1 lsl vi)) b in
                let block = Hashtbl.create 8 in
                List.iteri
                  (fun idx i -> Hashtbl.replace block i (List.nth key.spart idx))
                  sel;
                Hashtbl.replace block vi fresh;
                (* union v's block with the blocks of picked neighbors *)
                List.iter
                  (fun i ->
                    let bi = Hashtbl.find block i in
                    let bv = Hashtbl.find block vi in
                    if bi <> bv then
                      Hashtbl.iter
                        (fun j bj -> if bj = bi then Hashtbl.replace block j bv)
                        (Hashtbl.copy block))
                  !picked;
                let part =
                  canonical_partition (List.map (fun i -> Hashtbl.find block i) positions)
                in
                add out
                  { smask = pmask0 lor (1 lsl vi); spart = part; closed = false }
                  (cost + !extra) (!bought @ edges)
              done
            end)
          tc
    | Nice.Forget (v, c) ->
        let tc = solve c in
        let cbag = c.Nice.bag in
        let ci = index_of cbag v in
        let parent_mask mc =
          let low = mc land ((1 lsl ci) - 1) in
          let high = (mc lsr (ci + 1)) lsl ci in
          low lor high
        in
        Hashtbl.iter
          (fun key (cost, edges) ->
            if key.smask land (1 lsl ci) = 0 then
              add out { key with smask = parent_mask key.smask } cost edges
            else begin
              let sel = selected_positions key.smask (Array.length cbag) in
              let rank =
                let rec go r = function
                  | [] -> assert false
                  | i :: rest -> if i = ci then r else go (r + 1) rest
                in
                go 0 sel
              in
              let bv = List.nth key.spart rank in
              let others = List.filteri (fun i _ -> i <> rank) key.spart in
              if List.mem bv others then
                (* block survives through other members *)
                add out
                  {
                    smask = parent_mask key.smask;
                    spart = canonical_partition others;
                    closed = key.closed;
                  }
                  cost edges
              else if others = [] && not key.closed then
                (* the unique block closes: the tree is finished *)
                add out
                  { smask = parent_mask key.smask; spart = []; closed = true }
                  cost edges
              (* otherwise: a component would disconnect — invalid *)
            end)
          tc
    | Nice.Join (a, b2) ->
        let ta = solve a and tb = solve b2 in
        Hashtbl.iter
          (fun ka (costa, ea) ->
            Hashtbl.iter
              (fun kb (costb, eb) ->
                if ka.smask = kb.smask then
                  if ka.closed && kb.closed then ()
                  else if ka.closed || kb.closed then begin
                    (* one side finished: the other must be entirely empty *)
                    if ka.smask = 0 && ka.spart = [] && kb.spart = [] then
                      add out { smask = 0; spart = []; closed = true } (costa + costb)
                        (ea @ eb)
                  end
                  else begin
                    (* merge partitions over the same selected set *)
                    let k = List.length ka.spart in
                    let parent = Array.init k Fun.id in
                    let rec find i = if parent.(i) = i then i else find parent.(i) in
                    let union i j =
                      let ri = find i and rj = find j in
                      if ri <> rj then parent.(ri) <- rj
                    in
                    let link part =
                      let seen = Hashtbl.create 8 in
                      List.iteri
                        (fun i bi ->
                          match Hashtbl.find_opt seen bi with
                          | Some j -> union i j
                          | None -> Hashtbl.add seen bi i)
                        part
                    in
                    link ka.spart;
                    link kb.spart;
                    let merged =
                      canonical_partition (List.init k (fun i -> find i))
                    in
                    add out { smask = ka.smask; spart = merged; closed = false }
                      (costa + costb) (ea @ eb)
                  end)
              tb)
          ta);
    if Hashtbl.length out > !max_states then max_states := Hashtbl.length out;
    out
  in
  match terminals with
  | [] -> { value = 0; witness = []; table_words = 1 }
  | _ -> (
      let table = solve nice in
      match Hashtbl.find_opt table { smask = 0; spart = []; closed = true } with
      | None -> invalid_arg "Dp.steiner_tree: terminals cannot be connected"
      | Some (value, edges) ->
          let witness = List.sort_uniq compare edges in
          (* verify: witness connects all terminals at the stated weight *)
          let weight =
            List.fold_left
              (fun acc ei -> acc + (Digraph.edge g ei).Digraph.weight)
              0 witness
          in
          if weight <> value then witness_failure "steiner: witness weighs %d, table says %d" weight value;
          let sub =
            Digraph.create ~directed:false n
              (List.map
                 (fun ei ->
                   let e = Digraph.edge g ei in
                   (e.Digraph.src, e.Digraph.dst, e.Digraph.weight))
                 witness)
          in
          (match terminals with
          | [] -> ()
          | t0 :: rest ->
              let dist = Repro_graph.Traversal.bfs_undirected sub t0 in
              List.iter
                (fun t ->
                  if dist.(t) >= Digraph.inf then
                    witness_failure "steiner: witness does not connect terminal %d" t)
                rest);
          let table_words = 3 * !max_states in
          charge g nice ~table_words ~metrics ~label:"dp/steiner";
          { value; witness; table_words })
