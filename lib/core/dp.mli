(** Dynamic programming over nice tree decompositions — the
    tree-decomposition applications the paper cites from [Li18]
    (Section 1.1): once a decomposition has been computed distributively,
    optimal solutions of NP-hard problems follow by a bottom-up DP whose
    communication is one table aggregation per decomposition level and
    whose local work is exponential only in the decomposition width.

    Communication is charged as one BCT per nice-tree level with h = the
    largest DP table in words (Corollary 3), matching [Li18]'s
    2^O(width) * D shape with measured quantities. *)

type 'a result = {
  value : 'a;  (** optimum value *)
  witness : int list;  (** an optimal vertex set *)
  table_words : int;  (** largest DP table exchanged *)
}

(** Raised when a computed witness fails its independent re-verification
    (every solver checks its witness against the graph before returning).
    This indicates a bug in the DP itself, never bad user input; the
    payload names the problem and the violated check. *)
exception Witness_failure of string

(** [max_weight_independent_set ?weights g nice ~metrics] — maximum
    weight of an independent set (weights default to 1: maximum
    independent set). The witness is verified independent by the
    function before returning. *)
val max_weight_independent_set :
  ?weights:int array ->
  Repro_graph.Digraph.t ->
  Repro_treedec.Nice.t ->
  metrics:Repro_congest.Metrics.t ->
  int result

(** [min_vertex_cover g nice ~metrics] — complement of a maximum
    independent set. *)
val min_vertex_cover :
  Repro_graph.Digraph.t ->
  Repro_treedec.Nice.t ->
  metrics:Repro_congest.Metrics.t ->
  int result

(** [min_dominating_set g nice ~metrics] — minimum dominating set size
    (value and witness) by the 3-state black/white/grey DP
    [CFK+15, 7.3.2]. *)
val min_dominating_set :
  Repro_graph.Digraph.t ->
  Repro_treedec.Nice.t ->
  metrics:Repro_congest.Metrics.t ->
  int result

(** [steiner_tree g nice ~terminals ~metrics] — minimum total weight of
    a connected subgraph spanning all [terminals] (classic
    partition-state DP over the nice decomposition; edges are bought
    when their later endpoint is introduced). The witness is the edge-id
    list of an optimal tree, verified to connect the terminals at the
    stated weight. Table size grows with the Bell numbers of the bag, so
    the width cap is 8. *)
val steiner_tree :
  Repro_graph.Digraph.t ->
  Repro_treedec.Nice.t ->
  terminals:int list ->
  metrics:Repro_congest.Metrics.t ->
  int result
