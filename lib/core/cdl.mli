(** Constrained distance labeling CDL(C) (Section 5.2, Theorem 3).

    Builds the product graph G_C, lifts a tree decomposition of G to
    G_C, runs the distance-labeling construction of Theorem 2 on G_C and
    charges its measured rounds multiplied by the CONGEST simulation
    overhead |Q| * p_max. A node v of G owns the labels of all product
    vertices (v, q); the decoder

      sdec(q, sla(u), sla(v)) = dec(la(u, nabla), la(v, q))

    returns the exact shortest C(q)-walk length from u to v. *)

type t

val build :
  ?dec:Repro_treedec.Decomposition.t ->
  ?seed:int ->
  Repro_graph.Digraph.t ->
  Stateful.t ->
  metrics:Repro_congest.Metrics.t ->
  t

val product : t -> Product.t

(** [labels t] is the flat array of product-vertex labels, indexed by
    the product encoding [(v, q) = v * q_size + q] ({!Product.encode}) —
    what a label-serving store persists; {!sdec} is [Labeling.decode]
    over this array. *)
val labels : t -> Labeling.t array

(** [sdec t ~q ~src ~dst] decodes the shortest C(q)-walk length from the
    labels only. *)
val sdec : t -> q:int -> src:int -> dst:int -> int

(** [self_distance t ~q v] is [sdec t ~q ~src:v ~dst:v] — the girth
    algorithm's per-node quantity g(v) (Section 7). *)
val self_distance : t -> q:int -> int -> int

(** [label_words t v] is the size of node [v]'s CDL label: the sum over
    all q of la(v,q) (what Theorem 3 bounds). *)
val label_words : t -> int -> int

(** [shortest_walk t ~q ~src ~dst ~metrics] reconstructs a minimum
    C(q)-walk as G edge ids (Corollary 1); charges O(D + walk length)
    rounds under ["cdl/walk"]. *)
val shortest_walk :
  t -> q:int -> src:int -> dst:int -> metrics:Repro_congest.Metrics.t -> int list option

(** [sdec_min t ~qs ~src ~dst] is the minimum over several final states —
    how the "subset" constraints C(Q') of Section 5.1 are queried (e.g.
    "at most 2 risky legs" = min over count states 0..2). *)
val sdec_min : t -> qs:int list -> src:int -> dst:int -> int
