(** Distance-labeling construction (Section 4.2, Theorem 2).

    Bottom-up recursion over a tree decomposition: leaves gather their
    whole subgraph and solve APSP locally; an internal node [x] forms the
    auxiliary graph [H_x] on its bag (edge costs = min of the direct
    G-edge and the child-level distances, Lemmas 3-4), broadcasts it
    inside [G_x] (charged as BCT(h), Corollary 3), and every vertex of
    [G_x] extends its distance set to the bag [B_x] through the gateway
    anchors it learned at the child level.

    Works for {e any} valid tree decomposition of the input graph: the
    adhesion property [B_x cap V(G_child) subseteq B_child] needed by the
    update holds for every valid decomposition. *)

(** [build g dec ~metrics] returns exact distance labels for the weighted
    directed (or undirected) graph [g]. Rounds charged per level under
    ["dl/level"]. *)
val build :
  Repro_graph.Digraph.t ->
  Repro_treedec.Decomposition.t ->
  metrics:Repro_congest.Metrics.t ->
  Labeling.t array

(** [max_label_words labels] is the largest label size in words —
    the quantity Theorem 2 bounds. *)
val max_label_words : Labeling.t array -> int

(** Raised by {!load_text} on a malformed label line, with its position
    (never a bare [Failure]). *)
exception Parse_error of { file : string; line : int; msg : string }

(** [save_text path labels] writes the legacy one-label-per-line text
    format ({!Labeling.to_string}). The bit-packed binary store of
    [Repro_serve.Store] supersedes it for size and seek; both formats
    load through the same store interface. *)
val save_text : string -> Labeling.t array -> unit

(** [load_text path] reads a legacy text label file (blank lines
    skipped).
    @raise Parse_error on a malformed line. *)
val load_text : string -> Labeling.t array
