(** Weighted girth (Section 7, Theorem 5).

    Directed case: the length of the shortest cycle through edge (u,v) is
    w(u,v) + d(v,u); nodes exchange their distance labels across each
    edge (one exchange, label-size rounds, all edges in parallel) and the
    global minimum is aggregated over a BFS tree.

    Undirected case: a walk that "folds onto itself" must be excluded,
    which the paper does with exact count-1 walks (Lemma 6): assign each
    edge a random 0/1 label, build CDL(count-1), and let every node v
    compute g(v) = shortest exact-count-1 closed walk at v — always >= g,
    and = g when exactly one edge of some shortest cycle is labeled. The
    label probability is swept by doubling; repeated trials amplify the
    success probability.

    Modes: [`Faithful] runs the CDL construction per trial; [`Charged]
    runs it once and charges its measured cost per trial (the per-trial
    values are computed from the same product graph). The deterministic
    variant [`PerEdge] labels one edge at a time — m trials, each exact —
    and is used as a derandomized validation mode. *)

type mode = [ `Faithful | `Charged | `PerEdge ]

type result = {
  girth : int;  (** Digraph.inf when acyclic *)
  trials : int;  (** number of CDL constructions (or charges) performed *)
}

(** [directed ?dec g ~metrics] — exact girth of a directed weighted
    graph. [faults]/[reliable] apply to the message-level aggregation
    phases (BFS tree + convergecast) — see {!Repro_congest.Fault} and
    {!Repro_congest.Transport}. *)
val directed :
  ?dec:Repro_treedec.Decomposition.t ->
  ?seed:int ->
  ?faults:Repro_congest.Fault.t ->
  ?reliable:bool ->
  Repro_graph.Digraph.t ->
  metrics:Repro_congest.Metrics.t ->
  result

(** [undirected ?mode ?repeats ?dec g ~metrics] — girth of an undirected
    weighted graph; [repeats] is the per-scale trial count of the
    randomized modes (default [ceil_log2 n + 4]). The output is always an
    upper bound >= g (Lemma 6) and equals g with high probability
    ([`PerEdge]: with certainty). *)
val undirected :
  ?mode:mode ->
  ?repeats:int ->
  ?dec:Repro_treedec.Decomposition.t ->
  ?seed:int ->
  ?faults:Repro_congest.Fault.t ->
  ?reliable:bool ->
  Repro_graph.Digraph.t ->
  metrics:Repro_congest.Metrics.t ->
  result

(** [run g ~metrics] dispatches on [Digraph.directed g]. *)
val run :
  ?mode:mode ->
  ?seed:int ->
  ?faults:Repro_congest.Fault.t ->
  ?reliable:bool ->
  Repro_graph.Digraph.t ->
  metrics:Repro_congest.Metrics.t ->
  result

(** [witness ?seed g ~metrics] additionally reconstructs a shortest
    cycle: [Some (girth, edge ids)] or [None] when acyclic. Uses the
    exact per-edge mode for the value, then extracts the cycle through
    the minimizing edge (charged like a walk extraction,
    Corollary 1). *)
val witness :
  ?seed:int ->
  Repro_graph.Digraph.t ->
  metrics:Repro_congest.Metrics.t ->
  (int * int list) option
