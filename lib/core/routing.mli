(** Next-hop routing from distance labels.

    Distance labeling gives every node the means to make locally optimal
    forwarding decisions: after a one-time exchange of labels between
    neighbors (charged once, label-size rounds), node u forwards a packet
    for v along the outgoing edge e = (u, x) minimizing
    w(e) + dec(la(x), la(v)). Because the labels are exact, the greedy
    choice follows a shortest path, hop by hop. *)

type table

(** [prepare g labels ~metrics] performs the neighbor label exchange
    (charged under ["routing/exchange"]) and returns the routing state. *)
val prepare :
  Repro_graph.Digraph.t ->
  Labeling.t array ->
  metrics:Repro_congest.Metrics.t ->
  table

(** [next_hop table ~at ~dst] is the locally chosen outgoing edge id, or
    [None] if [dst] is unreachable from [at]. *)
val next_hop : table -> at:int -> dst:int -> int option

(** [route table ~src ~dst] is the full vertex path [src; ...; dst]
    obtained by following next hops ([None] when unreachable). The path
    length always equals the exact distance. *)
val route : table -> src:int -> dst:int -> int list option
