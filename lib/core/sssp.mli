(** Single-source shortest paths from a distance labeling (Section 1.2):
    the source streams its label down a BFS tree (pipelined, message
    level) and every node decodes its distance locally. Compare with the
    Theta(n)-round {!Repro_congest.Bellman_ford} baseline (experiment
    E2b). *)

type result = {
  dist_from_source : int array;  (** d(source -> v) for every v *)
  dist_to_source : int array;  (** d(v -> source) *)
  broadcast_rounds : int;  (** measured rounds of the label broadcast *)
}

(** [run g labels ~source ~metrics] decodes all distances after
    physically streaming the source label ([3 * #anchors] one-word items)
    down a BFS tree.

    The message-level phases (BFS tree + label streaming) optionally run
    under a fault adversary ([faults]) and over the reliable transport
    ([reliable]) — see {!Repro_congest.Fault} and
    {!Repro_congest.Transport}. *)
val run :
  ?faults:Repro_congest.Fault.t ->
  ?reliable:bool ->
  Repro_graph.Digraph.t ->
  Labeling.t array ->
  source:int ->
  metrics:Repro_congest.Metrics.t ->
  result
