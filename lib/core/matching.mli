(** Exact bipartite maximum matching (Section 6, Theorem 4).

    Divide and conquer over balanced separators: recursively match the
    connected components of G - S in parallel, then re-insert the
    separator vertices one at a time; by Proposition 1 (Iwata et al.),
    each insertion requires at most one augmenting path, starting at the
    inserted vertex. Augmenting paths are shortest 2-colored walks
    (color = matched / unmatched) found through CDL(colored-2) built on
    the whole graph with excluded vertices' edges priced at a huge weight
    (the paper's "cost infinity" trick), so sibling components share one
    CDL construction per step.

    Two costing modes:
    - [`Faithful] physically runs the CDL construction of Theorem 3 for
      every augmentation step (small inputs, tests);
    - [`Charged] runs it once per recursion node and charges the measured
      cost for each subsequent step (benchmarks). Both modes compute the
      same matching. *)

type mode = [ `Faithful | `Charged ]

type result = {
  mate : int array;  (** mate per vertex, -1 if unmatched *)
  size : int;
  augmentations : int;  (** total augmenting-path searches *)
  levels : int;  (** recursion depth *)
}

(** [run ?mode ?profile ?seed g ~metrics] computes a maximum matching of
    the undirected bipartite graph [g]. Edge weights are ignored
    (unweighted matching). @raise Invalid_argument if not bipartite. *)
val run :
  ?mode:mode ->
  ?profile:Repro_treedec.Separator.profile ->
  ?seed:int ->
  Repro_graph.Digraph.t ->
  metrics:Repro_congest.Metrics.t ->
  result

(** The baseline of [AKO18]-style sequential augmentation: one
    augmenting-path phase per matched edge, each a global BFS charged at
    Omega(diameter) rounds — Õ(s_max) total. Used by experiment E4b. *)
val sequential_baseline :
  Repro_graph.Digraph.t -> metrics:Repro_congest.Metrics.t -> result
