module Digraph = Repro_graph.Digraph
module Metrics = Repro_congest.Metrics

type table = { graph : Digraph.t; labels : Labeling.t array }

let prepare g labels ~metrics =
  (* every neighbor pair exchanges labels once, in parallel: pipelined
     label words in both directions *)
  let words =
    Array.fold_left (fun acc la -> max acc (Labeling.size_words la)) 0 labels
  in
  Metrics.add metrics ~label:"routing/exchange" (2 * words);
  { graph = g; labels }

let next_hop t ~at ~dst =
  if at = dst then None
  else begin
    let total = Labeling.decode t.labels.(at) t.labels.(dst) in
    if total >= Digraph.inf then None
    else begin
      let best = ref None and best_d = ref Digraph.inf in
      Array.iter
        (fun ei ->
          let e = Digraph.edge t.graph ei in
          let x = Digraph.dst_of t.graph e at in
          let rest = Labeling.decode t.labels.(x) t.labels.(dst) in
          if rest < Digraph.inf then begin
            let d = e.Digraph.weight + rest in
            if d < !best_d then begin
              best_d := d;
              best := Some ei
            end
          end)
        (Digraph.out_edges t.graph at);
      (* exact labels guarantee the greedy choice realizes the distance *)
      if !best_d = total then !best else None
    end
  end

let route t ~src ~dst =
  let n = Digraph.n t.graph in
  let rec go at acc steps =
    if at = dst then Some (List.rev (dst :: acc))
    else if steps > n then None (* defensive: cannot happen with exact labels *)
    else
      match next_hop t ~at ~dst with
      | None -> None
      | Some ei ->
          let e = Digraph.edge t.graph ei in
          go (Digraph.dst_of t.graph e at) (at :: acc) (steps + 1)
  in
  go src [] 0
