module Digraph = Repro_graph.Digraph
module Shortest_path = Repro_graph.Shortest_path
module Decomposition = Repro_treedec.Decomposition

type t = {
  graph : Digraph.t;
  product : Digraph.t;
  spec : Stateful.t;
  p_max : int;
}

let build g spec =
  let n = Digraph.n g in
  let q = spec.Stateful.q_size in
  let enc v s = (v * q) + s in
  let edges = ref [] in
  let add_transitions e src dst =
    for i = 0 to q - 1 do
      let j = spec.Stateful.delta e i in
      if j < 0 || j >= q then invalid_arg "Product.build: delta out of range";
      edges := (enc src i, enc dst j, e.Digraph.weight, e.Digraph.id) :: !edges
    done
  in
  Array.iter
    (fun e ->
      add_transitions e e.Digraph.src e.Digraph.dst;
      if (not (Digraph.directed g)) && e.Digraph.src <> e.Digraph.dst then
        add_transitions e e.Digraph.dst e.Digraph.src)
    (Digraph.edges g);
  (* condition (2): drop-to-bot edges keep the skeleton diameter O(D) *)
  for v = 0 to n - 1 do
    for i = 0 to q - 1 do
      if i <> spec.Stateful.bot then
        edges := (enc v i, enc v spec.Stateful.bot, 0, -1) :: !edges
    done
  done;
  let product = Digraph.create_labeled ~directed:true (n * q) (List.rev !edges) in
  { graph = g; product; spec; p_max = Digraph.max_multiplicity g }

let encode t v q = (v * t.spec.Stateful.q_size) + q

let decode_vertex t pv =
  (pv / t.spec.Stateful.q_size, pv mod t.spec.Stateful.q_size)

let overhead t = t.spec.Stateful.q_size * t.p_max

let constrained_distance t ~q ~src ~dst =
  let d = Shortest_path.dijkstra t.product (encode t src t.spec.Stateful.start) in
  d.(encode t dst q)

let shortest_constrained_walk t ~q ~src ~dst =
  let dist, pred =
    Shortest_path.dijkstra_tree t.product (encode t src t.spec.Stateful.start)
  in
  let target = encode t dst q in
  if dist.(target) >= Digraph.inf then None
  else
    let path = Shortest_path.path_of_tree t.product pred target in
    Some
      (List.filter_map
         (fun ei ->
           let lbl = (Digraph.edge t.product ei).Digraph.label in
           if lbl >= 0 then Some lbl else None)
         path)

let lift_decomposition t dec =
  let q = t.spec.Stateful.q_size in
  let lift_bag bag =
    Array.concat
      (Array.to_list (Array.map (fun v -> Array.init q (fun s -> (v * q) + s)) bag))
  in
  Decomposition.create t.product
    (List.map (fun k -> (k, lift_bag (Decomposition.bag dec k))) (Decomposition.keys dec))
