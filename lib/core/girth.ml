module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Shortest_path = Repro_graph.Shortest_path
module Metrics = Repro_congest.Metrics
module Bfs_tree = Repro_congest.Bfs_tree
module Broadcast = Repro_congest.Broadcast
module Primitives = Repro_shortcut.Primitives
module Build = Repro_treedec.Build

type mode = [ `Faithful | `Charged | `PerEdge ]
type result = { girth : int; trials : int }

let inf = Digraph.inf

(* convergecast of the global minimum over a BFS tree (message level);
   values can be inf, which we clamp to a sentinel word *)
let aggregate_min ?faults ?reliable skeleton values ~metrics =
  let sentinel = inf in
  let tree = Bfs_tree.build ?faults ?reliable skeleton ~root:0 ~metrics in
  let clamped = Array.map (fun v -> min v sentinel) values in
  Broadcast.convergecast ?faults ?reliable tree ~op:min ~values:clamped ~metrics

let default_dec ?dec ?(seed = 0) g ~metrics =
  match dec with
  | Some d -> d
  | None -> (Build.decompose ~seed (Digraph.skeleton g) ~metrics).Build.decomposition

let directed ?dec ?(seed = 0) ?faults ?reliable g ~metrics =
  if not (Digraph.directed g) then invalid_arg "Girth.directed: graph is undirected";
  let dec = default_dec ?dec ~seed g ~metrics in
  let labels = Dl.build g dec ~metrics in
  (* label exchange across every edge, in parallel: pipelined label words *)
  Metrics.add metrics ~label:"girth/exchange" (2 * Dl.max_label_words labels);
  let n = Digraph.n g in
  let candidate = Array.make n inf in
  Array.iter
    (fun e ->
      let u = e.Digraph.src and v = e.Digraph.dst in
      let c =
        if u = v then e.Digraph.weight
        else
          let back = Labeling.decode labels.(v) labels.(u) in
          if back >= inf then inf else e.Digraph.weight + back
      in
      if c < candidate.(u) then candidate.(u) <- c)
    (Digraph.edges g);
  let g_min = aggregate_min ?faults ?reliable (Digraph.skeleton g) candidate ~metrics in
  { girth = g_min; trials = 1 }

(* minimum over closed exact-count-1 walks under labeling [labeled]:
   every such walk crosses one labeled edge e=(a,b) and otherwise avoids
   labeled edges, so the optimum is min over labeled e of w(e) + d_0(b,a)
   where d_0 is the distance in the unlabeled subgraph. *)
let min_exact_count1 g ~labeled =
  let unlabeled_graph =
    Digraph.create_labeled ~directed:false (Digraph.n g)
      (Array.to_list (Digraph.edges g)
      |> List.filter_map (fun e ->
             if labeled e.Digraph.id then None
             else Some (e.Digraph.src, e.Digraph.dst, e.Digraph.weight, 0)))
  in
  let best = ref inf in
  Array.iter
    (fun e ->
      if labeled e.Digraph.id then
        if e.Digraph.src = e.Digraph.dst then best := min !best e.Digraph.weight
        else begin
          let d = Shortest_path.dijkstra unlabeled_graph e.Digraph.dst in
          if d.(e.Digraph.src) < inf then
            best := min !best (e.Digraph.weight + d.(e.Digraph.src))
        end)
    (Digraph.edges g);
  !best

let undirected ?(mode = `Charged) ?repeats ?dec ?(seed = 0) ?faults ?reliable g ~metrics =
  if Digraph.directed g then invalid_arg "Girth.undirected: graph is directed";
  let n = Digraph.n g and m = Digraph.m g in
  let repeats = match repeats with Some r -> r | None -> Primitives.ceil_log2 n + 4 in
  let dec = default_dec ?dec ~seed g ~metrics in
  let skeleton = Digraph.skeleton g in
  let c1 = Stateful.count ~limit:1 in
  let trials = ref 0 in
  let best = ref inf in
  let cdl_cost = ref None in
  let measure_cdl_cost labels_fn =
    match !cdl_cost with
    | Some c -> c
    | None ->
        let sub = Metrics.create () in
        ignore (Cdl.build ~dec ~seed (Digraph.with_labels g labels_fn) c1 ~metrics:sub);
        let c = Metrics.rounds sub in
        Metrics.add metrics ~label:"girth/cdl" c;
        cdl_cost := Some c;
        c
  in
  (match mode with
  | `PerEdge ->
      (* derandomized: label one edge at a time (m exact trials) *)
      let cost = measure_cdl_cost (fun _ -> 0) in
      Array.iter
        (fun e ->
          incr trials;
          let lg = Digraph.with_labels g (fun e' -> if e'.Digraph.id = e.Digraph.id then 1 else 0) in
          let v = min_exact_count1 lg ~labeled:(fun id -> id = e.Digraph.id) in
          if v < !best then best := v)
        (Digraph.edges g);
      Metrics.add metrics ~label:"girth/trials" ((m - 1) * cost)
  | (`Charged | `Faithful) as rmode ->
      let rng = Random.State.make [| seed; n; 0x91f7 |] in
      let scales =
        let rec go acc c = if c > max 2 m then List.rev acc else go (c :: acc) (2 * c) in
        go [] 1
      in
      List.iter
        (fun c_hat ->
          for _ = 1 to repeats do
            incr trials;
            let lbl = Array.make (max 1 m) 0 in
            Array.iteri
              (fun i _ ->
                if Random.State.float rng 1.0 < 1.0 /. (3.0 *. float_of_int c_hat) then
                  lbl.(i) <- 1)
              lbl;
            let labels_fn e = lbl.(e.Digraph.id) in
            let v =
              match rmode with
              | `Faithful ->
                  let cdl = Cdl.build ~dec ~seed (Digraph.with_labels g labels_fn) c1 ~metrics in
                  let q1 = Stateful.state_index_count c1 1 in
                  let per_node =
                    Array.init n (fun u -> Cdl.self_distance cdl ~q:q1 u)
                  in
                  aggregate_min ?faults ?reliable skeleton per_node ~metrics
              | `Charged ->
                  let cost = measure_cdl_cost labels_fn in
                  Metrics.add metrics ~label:"girth/trials" cost;
                  min_exact_count1 (Digraph.with_labels g labels_fn) ~labeled:(fun id ->
                      lbl.(id) = 1)
            in
            if v < !best then best := v
          done)
        scales);
  { girth = !best; trials = !trials }

let run ?(mode = `Charged) ?(seed = 0) ?faults ?reliable g ~metrics =
  if Digraph.directed g then directed ~seed ?faults ?reliable g ~metrics
  else undirected ~mode ~seed ?faults ?reliable g ~metrics

let witness ?(seed = 0) g ~metrics =
  let r =
    if Digraph.directed g then directed ~seed g ~metrics
    else undirected ~mode:`PerEdge ~seed g ~metrics
  in
  if r.girth >= inf then None
  else begin
    (* find a minimizing edge and the closing path that avoids it *)
    let best = ref None in
    Array.iter
      (fun e ->
        if !best = None then
          if e.Digraph.src = e.Digraph.dst then begin
            if e.Digraph.weight = r.girth then best := Some [ e.Digraph.id ]
          end
          else begin
            let without =
              Digraph.create_labeled ~directed:(Digraph.directed g) (Digraph.n g)
                (Array.to_list (Digraph.edges g)
                |> List.filter_map (fun e' ->
                       if (not (Digraph.directed g)) && e'.Digraph.id = e.Digraph.id
                       then None
                       else
                         Some
                           (e'.Digraph.src, e'.Digraph.dst, e'.Digraph.weight,
                            e'.Digraph.id)))
            in
            let dist, pred = Shortest_path.dijkstra_tree without e.Digraph.dst in
            if
              dist.(e.Digraph.src) < inf
              && dist.(e.Digraph.src) + e.Digraph.weight = r.girth
            then begin
              let back =
                Shortest_path.path_of_tree without pred e.Digraph.src
                |> List.map (fun ei -> (Digraph.edge without ei).Digraph.label)
              in
              best := Some (e.Digraph.id :: back)
            end
          end)
      (Digraph.edges g);
    match !best with
    | Some cycle ->
        let d = Traversal.diameter (Digraph.skeleton g) in
        Metrics.add metrics ~label:"girth/witness" (d + List.length cycle);
        Some (r.girth, cycle)
    | None -> None
  end
