module Digraph = Repro_graph.Digraph

type t = { owner : int; entries : (int, int * int) Hashtbl.t }

let create owner = { owner; entries = Hashtbl.create 16 }
let owner t = t.owner

(* Min-merge: entries for the same anchor may be produced at several
   decomposition levels (and by sibling subtrees sharing the pair); every
   produced value is the length of a real walk, so keeping the
   componentwise minimum is always sound and only improves precision. *)
let set t ~anchor ~d_to ~d_from =
  match Hashtbl.find_opt t.entries anchor with
  | Some (dt, df) -> Hashtbl.replace t.entries anchor (min dt d_to, min df d_from)
  | None -> Hashtbl.replace t.entries anchor (d_to, d_from)

let dist_to t anchor = Option.map fst (Hashtbl.find_opt t.entries anchor)
let dist_from t anchor = Option.map snd (Hashtbl.find_opt t.entries anchor)

let anchors t =
  List.sort compare (Hashtbl.fold (fun a _ acc -> a :: acc) t.entries [])

let decode la_u la_v =
  let best = ref Digraph.inf in
  Hashtbl.iter
    (fun anchor (d_to, _) ->
      match Hashtbl.find_opt la_v.entries anchor with
      | Some (_, d_from) ->
          if d_to < Digraph.inf && d_from < Digraph.inf && d_to + d_from < !best then
            best := d_to + d_from
      | None -> ())
    la_u.entries;
  !best

let size_words t = 3 * Hashtbl.length t.entries
let entry_count t = Hashtbl.length t.entries

let equal a b =
  a.owner = b.owner
  && Hashtbl.length a.entries = Hashtbl.length b.entries
  && List.for_all
       (fun anchor ->
         match (Hashtbl.find_opt a.entries anchor, Hashtbl.find_opt b.entries anchor) with
         | Some (dt, df), Some (dt', df') -> dt = dt' && df = df'
         | _ -> false)
       (anchors a)

let pp fmt t =
  Format.fprintf fmt "la(%d): %d anchors" t.owner (Hashtbl.length t.entries)

let to_string t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int t.owner);
  List.iter
    (fun a ->
      let d_to, d_from = Hashtbl.find t.entries a in
      Buffer.add_string buf (Printf.sprintf " %d %d %d" a d_to d_from))
    (anchors t);
  Buffer.contents buf

let of_string line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (( <> ) "")
    |> List.map int_of_string_opt
  with
  | Some owner :: rest ->
      let t = create owner in
      let rec go = function
        | Some a :: Some d_to :: Some d_from :: more ->
            set t ~anchor:a ~d_to ~d_from;
            go more
        | [] -> t
        | _ -> invalid_arg (Printf.sprintf "Labeling.of_string: malformed entry in %S" line)
      in
      go rest
  | _ -> invalid_arg (Printf.sprintf "Labeling.of_string: missing owner in %S" line)
