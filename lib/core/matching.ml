module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Bipartite = Repro_graph.Bipartite
module Matching_ref = Repro_graph.Matching_ref
module Metrics = Repro_congest.Metrics
module Part = Repro_shortcut.Part
module Primitives = Repro_shortcut.Primitives
module Separator = Repro_treedec.Separator
module Build = Repro_treedec.Build

type mode = [ `Faithful | `Charged ]

type result = { mate : int array; size : int; augmentations : int; levels : int }

let leaf_threshold = 16

(* weight larger than any real augmenting path (all real edges weigh 1) *)
let big n = 4 * (n + 2)

let masked_members = Repro_graph.Mask.vertices

(* The labeled graph for one augmentation step: matched edges get label 1,
   edges leaving the allowed set get the huge weight (the paper's "cost
   infinity" trick keeps the communication graph intact). *)
let alternation_graph gs ~allowed ~mate =
  let n = Digraph.n gs in
  let spec =
    Array.to_list (Digraph.edges gs)
    |> List.map (fun e ->
           let u = e.Digraph.src and v = e.Digraph.dst in
           let w = if allowed.(u) && allowed.(v) then 1 else big n in
           let lbl = if mate.(u) = v then 1 else 0 in
           (u, v, w, lbl))
  in
  Digraph.create_labeled ~directed:false n spec

(* one augmentation attempt from unmatched vertex [s]; returns true if the
   matching grew. [find] maps the labeled graph to a product+distance
   source able to answer queries; here we always search centrally on the
   product graph (the communication cost is charged by the caller). *)
let try_augment gs ~allowed ~mate ~s =
  if mate.(s) >= 0 then false
  else begin
    let lg = alternation_graph gs ~allowed ~mate in
    let c2 = Stateful.colored ~colors:2 in
    let p = Product.build lg c2 in
    let dist =
      Repro_graph.Shortest_path.dijkstra p.Product.product
        (Product.encode p s c2.Stateful.start)
    in
    let q_end = Stateful.state_index_color c2 0 in
    let n = Digraph.n gs in
    let best = ref (-1) and best_d = ref (big n) in
    for t = 0 to n - 1 do
      if t <> s && allowed.(t) && mate.(t) < 0 then begin
        let d = dist.(Product.encode p t q_end) in
        if d < !best_d then begin
          best_d := d;
          best := t
        end
      end
    done;
    if !best < 0 then false
    else begin
      match Product.shortest_constrained_walk p ~q:q_end ~src:s ~dst:!best with
      | None -> false
      | Some edge_ids ->
          let pairs =
            List.map
              (fun ei ->
                let e = Digraph.edge gs ei in
                (e.Digraph.src, e.Digraph.dst))
              edge_ids
          in
          let matched, unmatched =
            List.partition (fun (u, v) -> mate.(u) = v) pairs
          in
          List.iter
            (fun (u, v) ->
              if mate.(u) = v then begin
                mate.(u) <- -1;
                mate.(v) <- -1
              end)
            matched;
          List.iter
            (fun (u, v) ->
              mate.(u) <- v;
              mate.(v) <- u)
            unmatched;
          true
    end
  end

type rec_node = { mask : bool array; sep : int list; level : int }

let run ?(mode = `Charged) ?(profile = Separator.practical_profile) ?(seed = 0) g ~metrics =
  let gs = Digraph.skeleton g in
  if Bipartite.bipartition gs = None then
    invalid_arg "Matching.run: graph is not bipartite";
  let n = Digraph.n gs in
  let dec_report = Build.decompose ~profile ~seed gs ~metrics in
  let dec = dec_report.Build.decomposition in
  let mate = Array.make n (-1) in
  let augmentations = ref 0 in
  (* ---- top-down: build the separator recursion ---- *)
  let internal = ref [] and leaves = ref [] in
  let max_level = ref 0 in
  let queue = Queue.create () in
  Queue.add (Array.make n true, 0) queue;
  while not (Queue.is_empty queue) do
    let mask, level = Queue.pop queue in
    if level > !max_level then max_level := level;
    let members = masked_members mask in
    if List.length members <= leaf_threshold then leaves := (mask, level) :: !leaves
    else begin
      let cost = Primitives.cost_zero () in
      let sep, _t =
        Separator.find_separator ~profile ~seed:(seed + level) gs ~mask ~x_mask:mask ~cost
      in
      Metrics.add metrics ~label:"matching/sep" (Primitives.cost_rounds cost);
      internal := { mask; sep; level } :: !internal;
      let mask' = Array.copy mask in
      List.iter (fun v -> mask'.(v) <- false) sep;
      let labels, count = Traversal.components_mask gs mask' in
      let comp_masks = Array.init count (fun _ -> Array.make n false) in
      Array.iteri (fun v l -> if l >= 0 then comp_masks.(l).(v) <- true) labels;
      Array.iter (fun comp -> Queue.add (comp, level + 1) queue) comp_masks
    end
  done;
  (* ---- leaves: local maximum matching (centralized base case) ---- *)
  List.iter
    (fun (mask, _) ->
      let local = Matching_ref.hopcroft_karp_mask gs mask in
      Array.iteri (fun v m -> if m >= 0 then mate.(v) <- m) local)
    !leaves;
  (if !leaves <> [] then begin
     let parts =
       Part.make_unchecked gs
         (Array.of_list
            (List.filter_map
               (fun (mask, _) ->
                 match masked_members mask with
                 | [] -> None
                 | ms -> Some (Array.of_list ms))
               !leaves))
     in
     let b = Primitives.basis parts ~metrics in
     Metrics.add metrics ~label:"matching/leaf" (Primitives.lemma8_rounds b)
   end);
  (* ---- bottom-up: re-insert separator vertices level by level ---- *)
  for level = !max_level downto 0 do
    let nodes = List.filter (fun nd -> nd.level = level) !internal in
    if nodes <> [] then begin
      let steps = ref 0 in
      let cdl_cost_once = ref None in
      List.iter
        (fun nd ->
          let sep = Array.of_list nd.sep in
          let allowed = Array.copy nd.mask in
          Array.iter (fun v -> allowed.(v) <- false) sep;
          (* paper order: S_i = {s_i, ..., s_k}; insert s_k first *)
          for i = Array.length sep - 1 downto 0 do
            allowed.(sep.(i)) <- true;
            incr augmentations;
            (match mode with
            | `Faithful ->
                (* physically run the CDL construction of Theorem 3 on the
                   weight-masked graph *)
                let lg = alternation_graph gs ~allowed ~mate in
                ignore (Cdl.build ~dec ~seed lg (Stateful.colored ~colors:2) ~metrics)
            | `Charged -> (
                match !cdl_cost_once with
                | Some _ -> ()
                | None ->
                    let sub = Metrics.create () in
                    let lg = alternation_graph gs ~allowed ~mate in
                    ignore (Cdl.build ~dec ~seed lg (Stateful.colored ~colors:2) ~metrics:sub);
                    cdl_cost_once := Some (Metrics.rounds sub)));
            ignore (try_augment gs ~allowed ~mate ~s:sep.(i))
          done;
          steps := max !steps (Array.length sep))
        nodes;
      (match (mode, !cdl_cost_once) with
      | `Charged, Some c ->
          (* steps run sequentially; sibling nodes run in parallel *)
          Metrics.add metrics ~label:"matching/augment" (!steps * c)
      | _ -> ())
    end
  done;
  {
    mate;
    size = Matching_ref.size mate;
    augmentations = !augmentations;
    levels = !max_level + 1;
  }

let sequential_baseline g ~metrics =
  let gs = Digraph.skeleton g in
  if Bipartite.bipartition gs = None then
    invalid_arg "Matching.sequential_baseline: graph is not bipartite";
  let n = Digraph.n gs in
  let d = Traversal.diameter gs in
  let mate = Array.make n (-1) in
  let allowed = Array.make n true in
  let augmentations = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    for s = 0 to n - 1 do
      if mate.(s) < 0 then begin
        incr augmentations;
        (* one global alternating-BFS phase: Omega(D) rounds, plus the
           path length for the flip *)
        let grew = try_augment gs ~allowed ~mate ~s in
        Metrics.add metrics ~label:"baseline/phase" (d + 1);
        if grew then progress := true
      end
    done
  done;
  { mate; size = Matching_ref.size mate; augmentations = !augmentations; levels = 0 }
