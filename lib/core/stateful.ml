module Digraph = Repro_graph.Digraph

type t = {
  name : string;
  q_size : int;
  bot : int;
  start : int;
  delta : Digraph.edge -> int -> int;
}

(* Convention: bot = 0, nabla = 1, other states from 2. *)

let colored ~colors =
  if colors < 1 then invalid_arg "Stateful.colored";
  let state_of c = 2 + c in
  {
    name = Printf.sprintf "colored-%d" colors;
    q_size = colors + 2;
    bot = 0;
    start = 1;
    delta =
      (fun e q ->
        let c = e.Digraph.label in
        if c < 0 || c >= colors then invalid_arg "Stateful.colored: label out of range";
        if q = 0 then 0 (* bot absorbs *)
        else if q = state_of c then 0 (* same color twice: reject *)
        else state_of c);
  }

let count ~limit =
  if limit < 0 then invalid_arg "Stateful.count";
  let state_of k = 2 + k in
  {
    name = Printf.sprintf "count-%d" limit;
    q_size = limit + 3;
    bot = 0;
    start = 1;
    delta =
      (fun e q ->
        let bit = if e.Digraph.label <> 0 then 1 else 0 in
        if q = 0 then 0
        else
          let seen = if q = 1 then 0 else q - 2 in
          let seen = seen + bit in
          if seen > limit then 0 else state_of seen);
  }

let forbidden = { (count ~limit:0) with name = "forbidden" }

let parity =
  {
    name = "parity";
    q_size = 4;
    bot = 0;
    start = 1;
    delta =
      (fun e q ->
        let bit = if e.Digraph.label <> 0 then 1 else 0 in
        if q = 0 then 0
        else
          let p = if q = 3 then 1 else 0 (* 2 = even, 3 = odd *) in
          2 + ((p + bit) mod 2));
  }

let state_index_count c k =
  if k < 0 || k > c.q_size - 3 then invalid_arg "Stateful.state_index_count";
  2 + k

let state_index_color c col =
  if col < 0 || col > c.q_size - 3 then invalid_arg "Stateful.state_index_color";
  2 + col

let walk_state c g edge_ids =
  match edge_ids with
  | [] -> Ok c.start
  | first :: _ ->
      let edges = List.map (Digraph.edge g) edge_ids in
      (* choose the starting vertex: for a directed graph, the first
         edge's source; otherwise the endpoint not shared with the next
         edge (defaulting to src) *)
      let start_vertex =
        if Digraph.directed g then (List.hd edges).Digraph.src
        else
          match edges with
          | [ e ] -> e.Digraph.src
          | e1 :: e2 :: _ ->
              let touches v = e2.Digraph.src = v || e2.Digraph.dst = v in
              if touches e1.Digraph.dst then e1.Digraph.src
              else if touches e1.Digraph.src then e1.Digraph.dst
              else e1.Digraph.src
          | [] -> assert false
      in
      ignore first;
      let rec go at q = function
        | [] -> Ok q
        | e :: rest ->
            let next =
              if Digraph.directed g then
                if e.Digraph.src = at then Some e.Digraph.dst else None
              else if e.Digraph.src = at then Some e.Digraph.dst
              else if e.Digraph.dst = at then Some e.Digraph.src
              else None
            in
            (match next with
            | None ->
                Error
                  (Printf.sprintf "not a walk: edge %d does not leave vertex %d"
                     e.Digraph.id at)
            | Some nxt -> go nxt (c.delta e q) rest)
      in
      go start_vertex c.start edges

let of_dfa ~name ~states ~delta =
  if states < 1 then invalid_arg "Stateful.of_dfa";
  {
    name;
    q_size = states + 2;
    bot = 0;
    start = 1;
    delta =
      (fun e q ->
        if q = 0 then 0
        else
          let dfa_state = if q = 1 then 0 else q - 2 in
          match delta dfa_state e.Digraph.label with
          | Some s when s >= 0 && s < states -> 2 + s
          | Some _ -> invalid_arg "Stateful.of_dfa: delta out of range"
          | None -> 0);
  }

let state_index_dfa c s =
  if s < 0 || s > c.q_size - 3 then invalid_arg "Stateful.state_index_dfa";
  2 + s
