module Digraph = Repro_graph.Digraph
module Metrics = Repro_congest.Metrics
module Bfs_tree = Repro_congest.Bfs_tree
module Broadcast = Repro_congest.Broadcast

type result = {
  dist_from_source : int array;
  dist_to_source : int array;
  broadcast_rounds : int;
}

let run ?faults ?reliable g labels ~source ~metrics =
  let skeleton = if Digraph.directed g then Digraph.skeleton g else g in
  let tree = Bfs_tree.build ?faults ?reliable skeleton ~root:source ~metrics in
  let la_s = labels.(source) in
  (* stream the source label: anchor id, d_to, d_from per entry *)
  let items =
    List.concat_map
      (fun a ->
        let dt = Option.value ~default:Digraph.inf (Labeling.dist_to la_s a) in
        let df = Option.value ~default:Digraph.inf (Labeling.dist_from la_s a) in
        [ a; dt; df ])
      (Labeling.anchors la_s)
  in
  let before = Metrics.rounds metrics in
  let received = Broadcast.stream_down ?faults ?reliable tree ~items ~metrics in
  let broadcast_rounds = Metrics.rounds metrics - before in
  (* each node reconstructs la(source) from the received stream and
     decodes locally *)
  let n = Digraph.n g in
  let dist_from_source = Array.make n Digraph.inf in
  let dist_to_source = Array.make n Digraph.inf in
  for v = 0 to n - 1 do
    let rec rebuild la = function
      | a :: dt :: df :: rest ->
          Labeling.set la ~anchor:a ~d_to:dt ~d_from:df;
          rebuild la rest
      | [] -> la
      | _ -> invalid_arg "Sssp.run: malformed label stream"
    in
    let la_s_local = rebuild (Labeling.create source) received.(v) in
    dist_from_source.(v) <- Labeling.decode la_s_local labels.(v);
    dist_to_source.(v) <- Labeling.decode labels.(v) la_s_local
  done;
  { dist_from_source; dist_to_source; broadcast_rounds }
