(** Distance labels and their decoder (Section 4.1 of the paper).

    A node's label is its distance set to its anchor vertices — the union
    of the bags on the decomposition-tree path from the root down to the
    deepest bag containing the node ([B^up(u)], Section 4.1; our labels
    may also carry a few extra anchors from deeper bags the vertex itself
    belongs to, which only helps). Each anchor entry stores the exact
    distance in both directions, so the common decoder

      dec(la(u), la(v)) = min over shared anchors s of d(u,s) + d(s,v)

    recovers [d_G(u, v)] exactly (Lemma 2). *)

type t

(** [create owner] is an empty label for vertex [owner]. *)
val create : int -> t

val owner : t -> int

(** [set label ~anchor ~d_to ~d_from] installs the entry for [anchor]
    ([d_to] = distance owner->anchor, [d_from] = anchor->owner),
    min-merging componentwise with any existing entry: every produced
    value is a real walk length, so the minimum is always sound. *)
val set : t -> anchor:int -> d_to:int -> d_from:int -> unit

(** [dist_to label anchor] is [Some (d owner->anchor)] if present. *)
val dist_to : t -> int -> int option

val dist_from : t -> int -> int option

(** [anchors label] lists the anchor vertices, sorted. *)
val anchors : t -> int list

(** [decode la_u la_v] is the exact distance from [owner la_u] to
    [owner la_v] per the decoder above; [Digraph.inf] when no common
    anchor connects them. *)
val decode : t -> t -> int

(** [size_words label] is the label size in machine words (3 words per
    entry: anchor id + two distances), the quantity Theorem 2 bounds by
    O(tau^2 log^2 n) bits. *)
val size_words : t -> int

(** [entry_count label] is the number of anchor entries. *)
val entry_count : t -> int

(** [equal a b] — same owner and exactly the same anchor entries
    (serialization round-trip oracle). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** [to_string t] serializes the label (one line: owner then
    anchor/d_to/d_from triples). Round-trips through {!of_string}. *)
val to_string : t -> string

(** @raise Invalid_argument on malformed input ({!Dl.load_text} converts
    this into a positioned {!Dl.Parse_error}). *)
val of_string : string -> t
