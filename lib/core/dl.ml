module Digraph = Repro_graph.Digraph
module Metrics = Repro_congest.Metrics
module Part = Repro_shortcut.Part
module Primitives = Repro_shortcut.Primitives
module Decomposition = Repro_treedec.Decomposition

let inf = Digraph.inf

(* Floyd-Warshall on a small matrix (in place). *)
let floyd_warshall d =
  let k_n = Array.length d in
  for k = 0 to k_n - 1 do
    for i = 0 to k_n - 1 do
      if d.(i).(k) < inf then
        for j = 0 to k_n - 1 do
          if d.(k).(j) < inf && d.(i).(k) + d.(k).(j) < d.(i).(j) then
            d.(i).(j) <- d.(i).(k) + d.(k).(j)
        done
    done
  done

let build g dec ~metrics =
  let n = Digraph.n g in
  (* lightest direct edge u -> v (both directions when undirected) *)
  let direct = Hashtbl.create (Digraph.m g) in
  let record u v w =
    match Hashtbl.find_opt direct (u, v) with
    | Some w' when w' <= w -> ()
    | _ -> Hashtbl.replace direct (u, v) w
  in
  Array.iter
    (fun e ->
      record e.Digraph.src e.Digraph.dst e.Digraph.weight;
      if not (Digraph.directed g) then record e.Digraph.dst e.Digraph.src e.Digraph.weight)
    (Digraph.edges g);
  let direct_w u v =
    if u = v then 0
    else match Hashtbl.find_opt direct (u, v) with Some w -> w | None -> inf
  in
  (* subtree vertex sets, bottom-up *)
  let keys =
    List.sort
      (fun a b -> compare (List.length b) (List.length a))
      (Decomposition.keys dec)
  in
  let vsets : (Decomposition.key, int array) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun x ->
      let seen = Hashtbl.create 32 in
      Array.iter (fun v -> Hashtbl.replace seen v ()) (Decomposition.bag dec x);
      List.iter
        (fun i ->
          Array.iter (fun v -> Hashtbl.replace seen v ()) (Hashtbl.find vsets (x @ [ i ])))
        (Decomposition.children dec x);
      Hashtbl.replace vsets x
        (Array.of_list (List.sort compare (Hashtbl.fold (fun v () a -> v :: a) seen []))))
    keys;
  let labels = Array.init n Labeling.create in
  (* scratch: position of a vertex inside the current bag *)
  let pos = Array.make n (-1) in
  let child_of = Array.make n (-1) in
  let process x =
    let bag = Decomposition.bag dec x in
    let b = Array.length bag in
    Array.iteri (fun i v -> pos.(v) <- i) bag;
    let children = Decomposition.children dec x in
    let h = Array.make_matrix b b inf in
    for i = 0 to b - 1 do
      h.(i).(i) <- 0
    done;
    (match children with
    | [] ->
        (* leaf: H is just the induced subgraph on the bag *)
        for i = 0 to b - 1 do
          for j = 0 to b - 1 do
            if i <> j then h.(i).(j) <- direct_w bag.(i) bag.(j)
          done
        done
    | _ ->
        (* H_x edge cost = min(direct G edge, child-level distance) *)
        for i = 0 to b - 1 do
          for j = 0 to b - 1 do
            if i <> j then begin
              let w = direct_w bag.(i) bag.(j) in
              let w =
                match Labeling.dist_to labels.(bag.(i)) bag.(j) with
                | Some d -> min w d
                | None -> w
              in
              h.(i).(j) <- w
            end
          done
        done);
    (* edges actually present in H_x (what step 3 broadcasts) *)
    let h_edges = ref 0 in
    for i = 0 to b - 1 do
      for j = 0 to b - 1 do
        if i <> j && h.(i).(j) < inf then incr h_edges
      done
    done;
    floyd_warshall h;
    (* bag vertices learn exact in-G_x distances inside the bag *)
    Array.iteri
      (fun i u ->
        Array.iteri
          (fun j s ->
            Labeling.set labels.(u) ~anchor:s ~d_to:h.(i).(j) ~d_from:h.(j).(i))
          bag)
      bag;
    (* non-bag vertices extend through their child's gateway anchors *)
    (match children with
    | [] -> ()
    | _ ->
        let vset = Hashtbl.find vsets x in
        Array.iter (fun v -> child_of.(v) <- -1) vset;
        List.iter
          (fun i ->
            Array.iter
              (fun v -> if pos.(v) < 0 then child_of.(v) <- i)
              (Hashtbl.find vsets (x @ [ i ])))
          children;
        (* gateways per child: bag vertices present in that child *)
        let gateways =
          List.map
            (fun i ->
              ( i,
                Array.to_list (Hashtbl.find vsets (x @ [ i ]))
                |> List.filter (fun v -> pos.(v) >= 0) ))
            children
        in
        let gateway_tbl = Hashtbl.create 8 in
        List.iter (fun (i, gs) -> Hashtbl.add gateway_tbl i gs) gateways;
        Array.iter
          (fun u ->
            if pos.(u) < 0 then begin
              let ci = child_of.(u) in
              assert (ci >= 0);
              let gs = Hashtbl.find gateway_tbl ci in
              (* d(u -> a) and d(a -> u) for gateway anchors a *)
              let reach =
                List.filter_map
                  (fun a ->
                    match
                      (Labeling.dist_to labels.(u) a, Labeling.dist_from labels.(u) a)
                    with
                    | Some dt, Some df -> Some (pos.(a), dt, df)
                    | _ -> None)
                  gs
              in
              Array.iteri
                (fun j s ->
                  let d_to =
                    List.fold_left
                      (fun acc (ai, dt, _) ->
                        if dt < inf && h.(ai).(j) < inf then min acc (dt + h.(ai).(j))
                        else acc)
                      inf reach
                  and d_from =
                    List.fold_left
                      (fun acc (ai, _, df) ->
                        if df < inf && h.(j).(ai) < inf then min acc (h.(j).(ai) + df)
                        else acc)
                      inf reach
                  in
                  Labeling.set labels.(u) ~anchor:s ~d_to ~d_from)
                bag
            end)
          vset);
    Array.iter (fun v -> pos.(v) <- -1) bag;
    !h_edges
  in
  (* process by level, deepest first, charging one scheduled BCT per level *)
  let by_depth = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let d = List.length x in
      Hashtbl.replace by_depth d (x :: Option.value ~default:[] (Hashtbl.find_opt by_depth d)))
    keys;
  let depths =
    List.sort (fun a b -> compare b a) (Hashtbl.fold (fun d _ acc -> d :: acc) by_depth [])
  in
  List.iter
    (fun d ->
      let level_keys = Hashtbl.find by_depth d in
      let h_max = ref 0 in
      List.iter (fun x -> h_max := max !h_max (process x)) level_keys;
      let members =
        Array.of_list (List.map (fun x -> Hashtbl.find vsets x) level_keys)
      in
      let parts = Part.make_unchecked g members in
      let b = Primitives.basis parts ~metrics in
      Metrics.add metrics ~label:"dl/level" (Primitives.bct_rounds b ~h:!h_max))
    depths;
  labels

let max_label_words labels =
  Array.fold_left (fun acc la -> max acc (Labeling.size_words la)) 0 labels

(* ------------------------------------------------------------------ *)
(* Legacy text persistence: one label per line ([Labeling.to_string]).
   The original deployment format of labels_cli — human-readable and
   diff-able, but ~3 decimal words per entry. The bit-packed store in
   lib/serve supersedes it for size and O(1) seek (DESIGN §3h); both
   formats sit behind [Serve.Store.save]/[load]. *)

exception Parse_error of { file : string; line : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error { file; line; msg } ->
        Some (Printf.sprintf "Dl.Parse_error(%s:%d: %s)" file line msg)
    | _ -> None)

let save_text path labels =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter (fun la -> output_string oc (Labeling.to_string la ^ "\n")) labels)

let load_text path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] and lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             match Labeling.of_string line with
             | la -> out := la :: !out
             | exception Invalid_argument msg ->
                 raise (Parse_error { file = path; line = !lineno; msg })
         done
       with End_of_file -> ());
      Array.of_list (List.rev !out))
