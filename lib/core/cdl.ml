module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Metrics = Repro_congest.Metrics
module Build = Repro_treedec.Build

type t = { product : Product.t; labels : Labeling.t array }

let build ?dec ?(seed = 0) g spec ~metrics =
  let dec =
    match dec with
    | Some d -> d
    | None -> (Build.decompose ~seed g ~metrics).Build.decomposition
  in
  let product = Product.build g spec in
  let lifted = Product.lift_decomposition product dec in
  (* run Theorem 2 on G_C; charge the measured rounds times the
     simulation overhead |Q| * p_max (Section 5.2) *)
  let sub = Metrics.create () in
  let labels = Dl.build product.Product.product lifted ~metrics:sub in
  Metrics.add metrics ~label:"cdl/simulated" (Metrics.rounds sub * Product.overhead product);
  Metrics.add_messages metrics (Metrics.messages sub * Product.overhead product);
  { product; labels }

let product t = t.product
let labels t = t.labels

let sdec t ~q ~src ~dst =
  let s = Product.encode t.product src t.product.Product.spec.Stateful.start in
  let d = Product.encode t.product dst q in
  Labeling.decode t.labels.(s) t.labels.(d)

let self_distance t ~q v = sdec t ~q ~src:v ~dst:v

let label_words t v =
  let q_size = t.product.Product.spec.Stateful.q_size in
  let total = ref 0 in
  for q = 0 to q_size - 1 do
    total := !total + Labeling.size_words t.labels.(Product.encode t.product v q)
  done;
  !total

let shortest_walk t ~q ~src ~dst ~metrics =
  let walk = Product.shortest_constrained_walk t.product ~q ~src ~dst in
  (match walk with
  | Some edges ->
      (* Corollary 1: each walk node learns its predecessor and distance;
         charged as one D-bounded coordination plus the walk length *)
      let d = Traversal.diameter (Digraph.skeleton t.product.Product.graph) in
      Metrics.add metrics ~label:"cdl/walk" (d + List.length edges)
  | None ->
      let d = Traversal.diameter (Digraph.skeleton t.product.Product.graph) in
      Metrics.add metrics ~label:"cdl/walk" d);
  walk

let sdec_min t ~qs ~src ~dst =
  List.fold_left (fun acc q -> min acc (sdec t ~q ~src ~dst)) Digraph.inf qs
