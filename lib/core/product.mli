(** The auxiliary product graph G_C of Section 5.2 (Lemma 5).

    Vertex (v, q) of G_C is encoded as [v * q_size + q]. Edges:
    condition (1) — for every G-edge e = (u,v) and state i, an edge
    ((u,i), (v, delta_e(i))) of e's weight, labeled with e's id (so
    product walks map back to G walks); for undirected G each edge
    contributes both traversal directions. Condition (2) — zero-weight
    "drop to bot" edges (u,i)->(u,bot), which keep the skeleton diameter
    O(D) without affecting C(q)-distances for q <> bot.

    G_C is always directed (state transitions are directional). *)

type t = {
  graph : Repro_graph.Digraph.t;  (** the original graph G *)
  product : Repro_graph.Digraph.t;  (** G_C *)
  spec : Stateful.t;
  p_max : int;  (** edge multiplicity of G (Theorem 3's overhead factor) *)
}

val build : Repro_graph.Digraph.t -> Stateful.t -> t

(** [encode t v q] is the product vertex (v, q). *)
val encode : t -> int -> int -> int

(** [decode_vertex t pv] is [(v, q)]. *)
val decode_vertex : t -> int -> int * int

(** [overhead t] is the CONGEST simulation overhead factor |Q| * p_max
    for running algorithms on G_C over the network of G (Section 5.2). *)
val overhead : t -> int

(** [constrained_distance t ~q ~src ~dst] is the shortest weighted length
    of a walk from [src] to [dst] with final state [q] — computed
    centrally by Dijkstra on G_C (Lemma 5); the oracle the CDL labels are
    verified against. *)
val constrained_distance : t -> q:int -> src:int -> dst:int -> int

(** [shortest_constrained_walk t ~q ~src ~dst] is [Some edge-ids] (in G)
    of a minimum-weight walk reaching [dst] with state [q], or [None]. *)
val shortest_constrained_walk : t -> q:int -> src:int -> dst:int -> int list option

(** [lift_decomposition t dec] turns a tree decomposition of G into one
    of G_C by replacing each bag vertex v with U_Q(v) (Section 5.2);
    width is multiplied by |Q|. *)
val lift_decomposition : t -> Repro_treedec.Decomposition.t -> Repro_treedec.Decomposition.t
